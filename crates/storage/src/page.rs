//! Fixed-size slotted pages.
//!
//! Layout (little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  next page id (NO_PAGE terminates chains)
//!      4     2  slot count
//!      6     2  free end: start of the cell region (cells grow downward)
//!      8     1  page kind
//!      9     3  reserved
//!     12     4  extra (B+-tree internal nodes: leftmost child page id)
//!     16     8  page LSN: log sequence number of the WAL record that
//!               last stamped this page (0 = never logged)
//!     24   4*n  slot array: (cell offset u16, cell length u16) per record
//!   free_end.. PAGE_SIZE  cell data
//! ```
//!
//! Slot-level deletion is a tombstone: the slot keeps its offset but
//! its length drops to 0, so record ids stay stable and scans skip the
//! slot (no live record is ever zero-length — heap tuples carry a
//! 2-byte count, index entries a key header). Cell bytes of tombstoned
//! or shrunk records accumulate as dead space until [`Page::compact`]
//! repacks the live cells against the page end — slot numbers (and so
//! rids) never change, only cell offsets move. The heap layer compacts
//! lazily: exactly when an insert or in-place rewrite would otherwise
//! spill to another page while dead bytes could make it fit.

use crate::{StorageError, StorageResult};

/// Page size in bytes. 4 KiB, the classical unit the paper's I/O cost
/// model counts.
pub const PAGE_SIZE: usize = 4096;

/// Identifies a page within the database file.
pub type PageId = u32;

/// Chain terminator / "no page" marker.
pub const NO_PAGE: PageId = u32::MAX;

const HEADER_SIZE: usize = 24;
const SLOT_SIZE: usize = 4;

/// What a page stores; persisted in the header so reopening a file can
/// sanity-check chains.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum PageKind {
    Free = 0,
    Heap = 1,
    BTreeLeaf = 2,
    BTreeInternal = 3,
    /// Engine metadata (one per database): the `extra` word holds the
    /// head of the free-page list.
    Meta = 4,
}

impl PageKind {
    pub fn from_u8(v: u8) -> StorageResult<PageKind> {
        match v {
            0 => Ok(PageKind::Free),
            1 => Ok(PageKind::Heap),
            2 => Ok(PageKind::BTreeLeaf),
            3 => Ok(PageKind::BTreeInternal),
            4 => Ok(PageKind::Meta),
            other => Err(StorageError::Corrupt(format!("unknown page kind {other}"))),
        }
    }
}

/// One fixed-size page. Boxed by all holders; the array never moves.
pub struct Page {
    bytes: [u8; PAGE_SIZE],
}

impl Page {
    /// A zeroed page (kind `Free`, no slots, no next).
    pub fn zeroed() -> Box<Page> {
        let mut page = Box::new(Page {
            bytes: [0; PAGE_SIZE],
        });
        page.init(PageKind::Free);
        page
    }

    /// Resets the page to an empty page of the given kind.
    pub fn init(&mut self, kind: PageKind) {
        self.bytes = [0; PAGE_SIZE];
        self.set_next(NO_PAGE);
        self.set_free_end(PAGE_SIZE as u16);
        self.bytes[8] = kind as u8;
    }

    pub fn kind(&self) -> StorageResult<PageKind> {
        PageKind::from_u8(self.bytes[8])
    }

    pub fn next(&self) -> PageId {
        u32::from_le_bytes(self.bytes[0..4].try_into().expect("4 bytes"))
    }

    pub fn set_next(&mut self, next: PageId) {
        self.bytes[0..4].copy_from_slice(&next.to_le_bytes());
    }

    /// Extra header word; B+-tree internal nodes keep their leftmost
    /// child here.
    pub fn extra(&self) -> u32 {
        u32::from_le_bytes(self.bytes[12..16].try_into().expect("4 bytes"))
    }

    pub fn set_extra(&mut self, v: u32) {
        self.bytes[12..16].copy_from_slice(&v.to_le_bytes());
    }

    /// Log sequence number of the WAL record that last captured this
    /// page's image (0 for pages that were never logged). The buffer
    /// pool stamps it at commit; recovery and the eviction rule compare
    /// it against the durable LSN.
    pub fn lsn(&self) -> u64 {
        u64::from_le_bytes(self.bytes[16..24].try_into().expect("8 bytes"))
    }

    pub fn set_lsn(&mut self, lsn: u64) {
        self.bytes[16..24].copy_from_slice(&lsn.to_le_bytes());
    }

    pub fn slot_count(&self) -> usize {
        u16::from_le_bytes(self.bytes[4..6].try_into().expect("2 bytes")) as usize
    }

    fn set_slot_count(&mut self, n: u16) {
        self.bytes[4..6].copy_from_slice(&n.to_le_bytes());
    }

    fn free_end(&self) -> usize {
        u16::from_le_bytes(self.bytes[6..8].try_into().expect("2 bytes")) as usize
    }

    fn set_free_end(&mut self, v: u16) {
        self.bytes[6..8].copy_from_slice(&v.to_le_bytes());
    }

    fn slot(&self, i: usize) -> (usize, usize) {
        let base = HEADER_SIZE + i * SLOT_SIZE;
        let off = u16::from_le_bytes(self.bytes[base..base + 2].try_into().expect("2 bytes"));
        let len = u16::from_le_bytes(self.bytes[base + 2..base + 4].try_into().expect("2 bytes"));
        (off as usize, len as usize)
    }

    fn set_slot(&mut self, i: usize, off: u16, len: u16) {
        let base = HEADER_SIZE + i * SLOT_SIZE;
        self.bytes[base..base + 2].copy_from_slice(&off.to_le_bytes());
        self.bytes[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Bytes still available for one more record (slot entry included).
    pub fn free_space(&self) -> usize {
        self.free_end()
            .saturating_sub(HEADER_SIZE + self.slot_count() * SLOT_SIZE)
    }

    /// Whether a record of `len` bytes fits.
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT_SIZE
    }

    /// Largest record an empty page can hold.
    pub fn max_record_len() -> usize {
        PAGE_SIZE - HEADER_SIZE - SLOT_SIZE
    }

    /// The record stored in slot `i`.
    pub fn record(&self, i: usize) -> &[u8] {
        let (off, len) = self.slot(i);
        &self.bytes[off..off + len]
    }

    /// Appends a record, returning its slot number.
    pub fn push_record(&mut self, data: &[u8]) -> StorageResult<usize> {
        let slot = self.slot_count();
        self.insert_record_at(slot, data)?;
        Ok(slot)
    }

    /// Inserts a record so it occupies slot `pos`, shifting later slots
    /// up by one (cell data is position-independent). Used by B+-tree
    /// nodes to keep their records sorted.
    pub fn insert_record_at(&mut self, pos: usize, data: &[u8]) -> StorageResult<()> {
        if data.len() > Self::max_record_len() {
            return Err(StorageError::RecordTooLarge(data.len()));
        }
        if !self.fits(data.len()) {
            return Err(StorageError::Internal("insert into full page".into()));
        }
        let count = self.slot_count();
        assert!(pos <= count, "slot position out of range");
        let off = self.free_end() - data.len();
        self.bytes[off..off + data.len()].copy_from_slice(data);
        // Shift the slot array open.
        for i in (pos..count).rev() {
            let (o, l) = self.slot(i);
            self.set_slot(i + 1, o as u16, l as u16);
        }
        self.set_slot(pos, off as u16, data.len() as u16);
        self.set_free_end(off as u16);
        self.set_slot_count((count + 1) as u16);
        Ok(())
    }

    /// Length of the record in slot `i` (0 = tombstoned).
    pub fn record_len(&self, i: usize) -> usize {
        self.slot(i).1
    }

    /// Whether slot `i` holds a live record.
    pub fn is_live(&self, i: usize) -> bool {
        i < self.slot_count() && self.record_len(i) > 0
    }

    /// Tombstones slot `i`: the slot entry stays (record ids of later
    /// slots are stable) but its length becomes 0, which scans skip.
    /// The cell bytes are not reclaimed.
    pub fn remove_record(&mut self, i: usize) -> StorageResult<()> {
        if i >= self.slot_count() {
            return Err(StorageError::Internal(format!(
                "remove of slot {i} out of range ({} slots)",
                self.slot_count()
            )));
        }
        let (off, len) = self.slot(i);
        if len == 0 {
            return Err(StorageError::Internal(format!(
                "slot {i} is already deleted"
            )));
        }
        self.set_slot(i, off as u16, 0);
        Ok(())
    }

    /// Rewrites the record in slot `i` without changing its slot number.
    /// Shrinking (or equal-size) rewrites happen in the existing cell;
    /// growing rewrites allocate a fresh cell from this page's free
    /// space (the old cell leaks until the page is rebuilt). Returns
    /// `false` when the new record no longer fits this page — the
    /// caller must relocate it (tombstone + re-insert elsewhere).
    pub fn replace_record(&mut self, i: usize, data: &[u8]) -> StorageResult<bool> {
        if data.len() > Self::max_record_len() {
            return Err(StorageError::RecordTooLarge(data.len()));
        }
        if data.is_empty() {
            // Length 0 is the tombstone encoding; writing it through
            // replace would silently delete the record.
            return Err(StorageError::Internal(
                "replace_record with an empty record (use remove_record)".into(),
            ));
        }
        if i >= self.slot_count() {
            return Err(StorageError::Internal(format!(
                "replace of slot {i} out of range ({} slots)",
                self.slot_count()
            )));
        }
        let (off, len) = self.slot(i);
        if len == 0 {
            return Err(StorageError::Internal(format!("slot {i} is deleted")));
        }
        if data.len() <= len {
            self.bytes[off..off + data.len()].copy_from_slice(data);
            self.set_slot(i, off as u16, data.len() as u16);
            return Ok(true);
        }
        // The slot entry is reused, so only the cell bytes must fit
        // (free_space already excludes the slot array).
        if self.free_space() >= data.len() {
            let new_off = self.free_end() - data.len();
            self.bytes[new_off..new_off + data.len()].copy_from_slice(data);
            self.set_slot(i, new_off as u16, data.len() as u16);
            self.set_free_end(new_off as u16);
            return Ok(true);
        }
        Ok(false)
    }

    /// Bytes an in-place [`Page::compact`] would reclaim: cells of
    /// tombstoned records, leaked cells of grown rewrites, and shrunk
    /// records' tails. 0 means the cell region is already packed.
    pub fn dead_space(&self) -> usize {
        let live: usize = (0..self.slot_count()).map(|i| self.record_len(i)).sum();
        (PAGE_SIZE - self.free_end()).saturating_sub(live)
    }

    /// Whether a record of `len` bytes would fit after compaction (slot
    /// entry included) even though it may not fit right now.
    pub fn fits_after_compact(&self, len: usize) -> bool {
        self.free_space() + self.dead_space() >= len + SLOT_SIZE
    }

    /// Repacks every live cell against the end of the page, reclaiming
    /// the dead bytes tombstones and rewrites left behind. Slot numbers
    /// are untouched (rids stay valid); only cell offsets move.
    /// Tombstoned slots keep their zero length. Returns the bytes
    /// reclaimed.
    pub fn compact(&mut self) -> usize {
        let dead = self.dead_space();
        if dead == 0 {
            return 0;
        }
        let mut packed = [0u8; PAGE_SIZE];
        let mut end = PAGE_SIZE;
        let mut offsets = Vec::with_capacity(self.slot_count());
        for i in 0..self.slot_count() {
            let (off, len) = self.slot(i);
            if len == 0 {
                offsets.push((off, 0));
                continue;
            }
            end -= len;
            packed[end..end + len].copy_from_slice(&self.bytes[off..off + len]);
            offsets.push((end, len));
        }
        self.bytes[end..PAGE_SIZE].copy_from_slice(&packed[end..PAGE_SIZE]);
        for (i, (off, len)) in offsets.into_iter().enumerate() {
            // Dead slots are re-pointed at the new free end: their old
            // offsets may now sit below it, which validate() rejects.
            let off = if len == 0 { end } else { off };
            self.set_slot(i, off as u16, len as u16);
        }
        self.set_free_end(end as u16);
        dead
    }

    /// Iterates over all records in slot order (tombstones included, as
    /// empty slices — B+-tree nodes never tombstone; heap readers skip
    /// zero-length slots).
    pub fn records(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.slot_count()).map(move |i| self.record(i))
    }

    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }

    pub fn as_bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.bytes
    }

    /// Copies another page's contents wholesale.
    pub fn copy_from(&mut self, other: &Page) {
        self.bytes = other.bytes;
    }

    /// Structural validation of untrusted page bytes: kind tag, header
    /// offsets and every slot must be in bounds. Run by the buffer pool
    /// on every page faulted in from the pager, so a torn write or bit
    /// flip in a database file surfaces as [`StorageError::Corrupt`]
    /// instead of an out-of-bounds panic in [`Page::record`].
    pub fn validate(&self) -> StorageResult<()> {
        self.kind()?;
        let free_end = self.free_end();
        let count = self.slot_count();
        if free_end > PAGE_SIZE || HEADER_SIZE + count * SLOT_SIZE > free_end {
            return Err(StorageError::Corrupt(format!(
                "page header out of bounds: {count} slots, free end {free_end}"
            )));
        }
        for i in 0..count {
            let (off, len) = self.slot(i);
            if off < free_end || off + len > PAGE_SIZE {
                return Err(StorageError::Corrupt(format!(
                    "slot {i} out of bounds: offset {off}, length {len}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_and_header_round_trip() {
        let mut p = Page::zeroed();
        assert_eq!(p.kind().unwrap(), PageKind::Free);
        p.init(PageKind::Heap);
        assert_eq!(p.kind().unwrap(), PageKind::Heap);
        assert_eq!(p.next(), NO_PAGE);
        assert_eq!(p.slot_count(), 0);
        p.set_next(7);
        p.set_extra(99);
        p.set_lsn(0xdead_beef_0042);
        assert_eq!(p.next(), 7);
        assert_eq!(p.extra(), 99);
        assert_eq!(p.lsn(), 0xdead_beef_0042);
        p.init(PageKind::Heap);
        assert_eq!(p.lsn(), 0, "init must clear the page LSN");
    }

    #[test]
    fn push_and_read_records() {
        let mut p = Page::zeroed();
        p.init(PageKind::Heap);
        let a = p.push_record(b"hello").unwrap();
        let b = p.push_record(b"world!").unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(p.record(0), b"hello");
        assert_eq!(p.record(1), b"world!");
        let all: Vec<&[u8]> = p.records().collect();
        assert_eq!(all, vec![b"hello".as_slice(), b"world!".as_slice()]);
    }

    #[test]
    fn insert_at_keeps_order() {
        let mut p = Page::zeroed();
        p.init(PageKind::BTreeLeaf);
        p.push_record(b"a").unwrap();
        p.push_record(b"c").unwrap();
        p.insert_record_at(1, b"b").unwrap();
        let all: Vec<&[u8]> = p.records().collect();
        assert_eq!(all, vec![b"a".as_slice(), b"b".as_slice(), b"c".as_slice()]);
    }

    #[test]
    fn fills_up_and_reports_capacity() {
        let mut p = Page::zeroed();
        p.init(PageKind::Heap);
        let record = [0u8; 100];
        let mut n = 0;
        while p.fits(record.len()) {
            p.push_record(&record).unwrap();
            n += 1;
        }
        // 4096 - 24 header = 4072; each record costs 104 bytes.
        assert_eq!(n, 39);
        assert!(p.push_record(&record).is_err());
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = Page::zeroed();
        p.init(PageKind::Heap);
        let big = vec![1u8; PAGE_SIZE];
        assert!(matches!(
            p.push_record(&big),
            Err(StorageError::RecordTooLarge(_))
        ));
        assert!(p.push_record(&vec![2u8; Page::max_record_len()]).is_ok());
    }

    #[test]
    fn remove_record_tombstones_without_moving_neighbors() {
        let mut p = Page::zeroed();
        p.init(PageKind::Heap);
        p.push_record(b"first").unwrap();
        p.push_record(b"second").unwrap();
        p.push_record(b"third").unwrap();
        p.remove_record(1).unwrap();
        assert_eq!(p.slot_count(), 3, "slots are stable");
        assert!(p.is_live(0) && !p.is_live(1) && p.is_live(2));
        assert_eq!(p.record(0), b"first");
        assert_eq!(p.record(1), b"");
        assert_eq!(p.record(2), b"third");
        assert!(p.remove_record(1).is_err(), "double delete rejected");
        assert!(p.remove_record(9).is_err());
        p.validate().unwrap();
    }

    #[test]
    fn replace_record_in_place_and_grown() {
        let mut p = Page::zeroed();
        p.init(PageKind::Heap);
        p.push_record(b"abcdef").unwrap();
        p.push_record(b"neighbor").unwrap();
        // Shrink: same cell.
        assert!(p.replace_record(0, b"xy").unwrap());
        assert_eq!(p.record(0), b"xy");
        assert_eq!(p.record(1), b"neighbor");
        // Grow: fresh cell from free space, same slot.
        assert!(p.replace_record(0, b"a-much-longer-record").unwrap());
        assert_eq!(p.record(0), b"a-much-longer-record");
        assert_eq!(p.record(1), b"neighbor");
        p.validate().unwrap();
        // Grow past the page's remaining space: refused, record intact.
        p.push_record(&vec![0u8; 3000]).unwrap();
        let free = p.free_space();
        assert!(free + 100 <= Page::max_record_len());
        assert!(!p.replace_record(0, &vec![7u8; free + 100]).unwrap());
        assert_eq!(p.record(0), b"a-much-longer-record");
        assert!(p.replace_record(9, b"x").is_err());
        assert!(matches!(
            p.replace_record(0, &vec![1u8; PAGE_SIZE]),
            Err(StorageError::RecordTooLarge(_))
        ));
        // An empty record is the tombstone encoding: rejected, not a
        // silent delete.
        assert!(p.replace_record(0, b"").is_err());
        assert!(p.is_live(0));
    }

    #[test]
    fn compact_reclaims_tombstoned_and_leaked_cells() {
        let mut p = Page::zeroed();
        p.init(PageKind::Heap);
        for i in 0..8 {
            p.push_record(&vec![i as u8; 400]).unwrap();
        }
        // Tombstone half, shrink one, grow one (leaking its old cell).
        for i in [1usize, 3, 5, 7] {
            p.remove_record(i).unwrap();
        }
        assert!(p.replace_record(0, &[9u8; 100]).unwrap());
        assert!(p.replace_record(2, &[8u8; 450]).unwrap());
        let dead = p.dead_space();
        assert!(dead >= 4 * 400 + 300, "dead bytes accumulated: {dead}");
        let before: Vec<(bool, Vec<u8>)> = (0..p.slot_count())
            .map(|i| (p.is_live(i), p.record(i).to_vec()))
            .collect();
        let reclaimed = p.compact();
        assert_eq!(reclaimed, dead);
        assert_eq!(p.dead_space(), 0);
        p.validate().unwrap();
        let after: Vec<(bool, Vec<u8>)> = (0..p.slot_count())
            .map(|i| (p.is_live(i), p.record(i).to_vec()))
            .collect();
        assert_eq!(before, after, "compaction must not move slots");
        assert_eq!(p.compact(), 0, "already packed");
        // The reclaimed space is insertable again.
        assert!(p.fits(dead - SLOT_SIZE));
    }

    #[test]
    fn fits_after_compact_predicts_compaction() {
        let mut p = Page::zeroed();
        p.init(PageKind::Heap);
        let a = p.push_record(&vec![1u8; 2000]).unwrap();
        p.push_record(&vec![2u8; 1800]).unwrap();
        p.remove_record(a).unwrap();
        let big = vec![3u8; 2000];
        assert!(!p.fits(big.len()), "no contiguous room before compaction");
        assert!(p.fits_after_compact(big.len()));
        p.compact();
        let slot = p.push_record(&big).unwrap();
        assert_eq!(p.record(slot), &big[..]);
        assert_eq!(p.record(1), &[2u8; 1800][..], "neighbor survived");
        p.validate().unwrap();
    }

    #[test]
    fn kind_round_trip_and_corruption() {
        for kind in [
            PageKind::Free,
            PageKind::Heap,
            PageKind::BTreeLeaf,
            PageKind::BTreeInternal,
        ] {
            assert_eq!(PageKind::from_u8(kind as u8).unwrap(), kind);
        }
        assert!(PageKind::from_u8(42).is_err());
    }
}

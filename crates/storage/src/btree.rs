//! B+-tree secondary indexes keyed on [`Datum`], mapping keys to heap
//! record ids.
//!
//! Node layout reuses the slotted page:
//!
//! * leaf records: `[key length u16][key bytes][rid 6 bytes]`, sorted by
//!   `(key, rid)`; the page `next` pointer chains leaves left-to-right;
//! * internal records: `[key length u16][key bytes][child page u32]`,
//!   sorted by key; the page `extra` word holds the leftmost child
//!   (covering keys below every separator).
//!
//! Duplicate keys are supported; a run of equal keys may span leaves, so
//! lookups descend to the leftmost candidate leaf and walk the chain.
//! Splits rebuild nodes from scratch — simple, and with 4 KiB pages and
//! short keys, far from the bottleneck.
//!
//! Like the heap, tree mutations run through [`BufferPool`] guards and
//! inherit WAL transaction semantics from the pool: an aborted insert
//! restores every touched node (split allocations revert to free
//! pages), and the caller rolls back its copy of the root id. Bulk
//! builds (`StorageEngine::create_index`) run outside transactions and
//! are forced to disk before the catalog registers the root.
//!
//! # Concurrency: latch crabbing
//!
//! Read descents (lookups, range cursors, and the routing phase of
//! mutations) use **lock coupling**: the child page is pinned and
//! verified to be a tree node while the parent pin is still held, and
//! only then is the parent released ([`descend_to_leaf`]). Every
//! per-node read takes the page's frame latch
//! ([`PinnedPage::with_latched`]), so a node is always observed either
//! entirely before or entirely after a concurrent rebuild — splits
//! reconstruct a node in one latched mutation and populate the new
//! right sibling *before* it becomes reachable.
//!
//! Mutations stay exclusive (the engine serializes writers), so a
//! reader races at most one in-flight split. That race is benign by
//! construction: splits move entries **right**, never free pages, and
//! link `left.next → right` in the same latched rebuild, so a stale
//! route can only land a reader *left* of its target — and the
//! left-to-right leaf chain walk that follows every descent recovers
//! by walking forward until the key range is passed.
//!
//! [`PinnedPage::with_latched`]: crate::buffer::PinnedPage::with_latched

use crate::buffer::{BufferPool, PinnedPage};
use crate::codec::{decode_datum, encode_key};
use crate::heap::Rid;
use crate::metrics::bump;
use crate::page::{Page, PageId, PageKind, NO_PAGE};
use crate::value::Datum;
use crate::{StorageError, StorageResult};
use std::cmp::Ordering;

/// Largest encoded key the tree accepts. Capping keys at a quarter page
/// guarantees several entries fit per node, which in turn guarantees
/// byte-balanced splits always produce two halves that fit (see
/// [`split_point`]). Callers must check [`check_key`] *before* mutating
/// any other structure (the storage engine does, before heap inserts).
pub const MAX_KEY_LEN: usize = crate::page::PAGE_SIZE / 4;

/// Rejects keys the tree could not store without breaking node
/// invariants.
pub fn check_key(key: &Datum) -> StorageResult<()> {
    let len = encode_key(key).len();
    if len > MAX_KEY_LEN {
        return Err(StorageError::RecordTooLarge(len));
    }
    Ok(())
}

/// Index of the first entry of the right half when splitting: the
/// earliest cut point at or past half the total byte cost, clamped so
/// both halves are non-empty. Splitting by bytes (not entry count)
/// keeps either half within page capacity even when entry sizes are
/// skewed — a count split could put all the large entries on one side.
fn split_point(costs: &[usize]) -> usize {
    let total: usize = costs.iter().sum();
    let mut acc = 0;
    for (i, c) in costs.iter().enumerate() {
        acc += c;
        if acc * 2 >= total {
            return (i + 1).clamp(1, costs.len() - 1);
        }
    }
    costs.len() - 1
}

/// One leaf entry.
#[derive(Clone, Debug, PartialEq, Eq)]
struct LeafEntry {
    key: Vec<u8>,
    rid: Rid,
}

impl LeafEntry {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.key.len() + Rid::ENCODED_LEN);
        out.extend_from_slice(&(self.key.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.key);
        self.rid.encode(&mut out);
        out
    }

    fn decode(record: &[u8]) -> StorageResult<LeafEntry> {
        let (key, rest) = split_key(record)?;
        Ok(LeafEntry {
            key: key.to_vec(),
            rid: Rid::decode(rest)?,
        })
    }
}

/// One internal (separator, child) entry.
#[derive(Clone, Debug)]
struct InternalEntry {
    key: Vec<u8>,
    child: PageId,
}

impl InternalEntry {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.key.len() + 4);
        out.extend_from_slice(&(self.key.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.key);
        out.extend_from_slice(&self.child.to_le_bytes());
        out
    }

    fn decode(record: &[u8]) -> StorageResult<InternalEntry> {
        let (key, rest) = split_key(record)?;
        if rest.len() < 4 {
            return Err(StorageError::Corrupt("truncated internal entry".into()));
        }
        Ok(InternalEntry {
            key: key.to_vec(),
            child: u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")),
        })
    }
}

fn split_key(record: &[u8]) -> StorageResult<(&[u8], &[u8])> {
    if record.len() < 2 {
        return Err(StorageError::Corrupt("truncated index entry".into()));
    }
    let klen = u16::from_le_bytes(record[0..2].try_into().expect("2 bytes")) as usize;
    if record.len() < 2 + klen {
        return Err(StorageError::Corrupt("truncated index key".into()));
    }
    Ok((&record[2..2 + klen], &record[2 + klen..]))
}

/// Compares two encoded keys by their decoded [`Datum`] order.
fn cmp_keys(a: &[u8], b: &[u8]) -> StorageResult<Ordering> {
    let (mut pa, mut pb) = (0, 0);
    let da = decode_datum(a, &mut pa)?;
    let db = decode_datum(b, &mut pb)?;
    Ok(da.total_cmp(&db))
}

/// A B+-tree rooted at `root`. The root moves on root splits; callers
/// persist the new root id (the engine records it in `system_indexes`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BPlusTree {
    pub root: PageId,
}

impl BPlusTree {
    /// Creates an empty tree (a single leaf).
    pub fn create(pool: &BufferPool) -> StorageResult<BPlusTree> {
        let (root, _guard) = pool.allocate(PageKind::BTreeLeaf)?;
        Ok(BPlusTree { root })
    }

    /// Adopts an existing root (catalog bootstrap).
    pub fn open(root: PageId) -> BPlusTree {
        BPlusTree { root }
    }

    /// Inserts one `key → rid` posting.
    pub fn insert(&mut self, pool: &BufferPool, key: &Datum, rid: Rid) -> StorageResult<()> {
        check_key(key)?;
        let entry = LeafEntry {
            key: encode_key(key),
            rid,
        };
        bump(&pool.metrics().btree_descents);
        // Crab to the leaf, remembering the path for split propagation.
        let mut path: Vec<PageId> = Vec::new();
        let leaf = descend_to_leaf(
            pool,
            self.root,
            |p| child_for_insert(p, &entry.key),
            |id| path.push(id),
        )?;
        let current = leaf.id();
        drop(leaf);

        // Insert into the leaf, splitting upward as needed.
        let mut promoted = self.insert_into_leaf(pool, current, entry)?;
        while let Some((sep, new_child)) = promoted {
            match path.pop() {
                Some(parent) => {
                    promoted = self.insert_into_internal(pool, parent, sep, new_child)?;
                }
                None => {
                    // Root split: new internal root over old root + new child.
                    bump(&pool.metrics().btree_splits);
                    let (new_root, guard) = pool.allocate(PageKind::BTreeInternal)?;
                    guard.with_mut(|p| {
                        p.set_extra(self.root);
                        p.push_record(
                            &InternalEntry {
                                key: sep,
                                child: new_child,
                            }
                            .encode(),
                        )
                    })??;
                    self.root = new_root;
                    promoted = None;
                }
            }
        }
        Ok(())
    }

    /// Inserts into a leaf; on overflow splits it and returns the
    /// promoted `(separator, right page)`.
    fn insert_into_leaf(
        &mut self,
        pool: &BufferPool,
        leaf_id: PageId,
        entry: LeafEntry,
    ) -> StorageResult<Option<(Vec<u8>, PageId)>> {
        let guard = pool.fetch(leaf_id)?;
        let record = entry.encode();
        let pos = guard.with(|p| leaf_position(p, &entry))?;
        if guard.with(|p| p.fits(record.len())) {
            guard.with_mut(|p| p.insert_record_at(pos, &record))??;
            return Ok(None);
        }
        // Split: collect all entries plus the new one, redistribute.
        bump(&pool.metrics().btree_splits);
        let (mut entries, old_next) = guard.with(|p| -> StorageResult<_> {
            let mut es = Vec::with_capacity(p.slot_count() + 1);
            for record in p.records() {
                es.push(LeafEntry::decode(record)?);
            }
            Ok((es, p.next()))
        })?;
        entries.insert(pos, entry);
        let costs: Vec<usize> = entries.iter().map(|e| e.encode().len() + 4).collect();
        let mid = split_point(&costs);
        let right_entries = entries.split_off(mid);
        let separator = right_entries[0].key.clone();

        let (right_id, right_guard) = pool.allocate(PageKind::BTreeLeaf)?;
        right_guard.with_mut(|p| -> StorageResult<()> {
            p.set_next(old_next);
            for e in &right_entries {
                p.push_record(&e.encode())?;
            }
            Ok(())
        })??;
        guard.with_mut(|p| -> StorageResult<()> {
            p.init(PageKind::BTreeLeaf);
            p.set_next(right_id);
            for e in &entries {
                p.push_record(&e.encode())?;
            }
            Ok(())
        })??;
        Ok(Some((separator, right_id)))
    }

    /// Inserts a promoted separator into an internal node; on overflow
    /// splits it and returns the next promotion.
    fn insert_into_internal(
        &mut self,
        pool: &BufferPool,
        node_id: PageId,
        sep: Vec<u8>,
        child: PageId,
    ) -> StorageResult<Option<(Vec<u8>, PageId)>> {
        let guard = pool.fetch(node_id)?;
        let record = InternalEntry {
            key: sep.clone(),
            child,
        }
        .encode();
        let pos = guard.with(|p| internal_position(p, &sep))?;
        if guard.with(|p| p.fits(record.len())) {
            guard.with_mut(|p| p.insert_record_at(pos, &record))??;
            return Ok(None);
        }
        // Split. children = [leftmost, e0.child, e1.child, ...].
        bump(&pool.metrics().btree_splits);
        let (mut entries, leftmost) = guard.with(|p| -> StorageResult<_> {
            let mut es = Vec::with_capacity(p.slot_count() + 1);
            for record in p.records() {
                es.push(InternalEntry::decode(record)?);
            }
            Ok((es, p.extra()))
        })?;
        entries.insert(pos, InternalEntry { key: sep, child });
        let costs: Vec<usize> = entries.iter().map(|e| e.encode().len() + 4).collect();
        let mid = split_point(&costs).min(entries.len() - 2).max(1);
        let right_entries = entries.split_off(mid + 1);
        let promoted = entries.pop().expect("mid entry exists");
        // Left keeps `leftmost` + entries; right's leftmost child is the
        // promoted entry's child.
        let (right_id, right_guard) = pool.allocate(PageKind::BTreeInternal)?;
        right_guard.with_mut(|p| -> StorageResult<()> {
            p.set_extra(promoted.child);
            for e in &right_entries {
                p.push_record(&e.encode())?;
            }
            Ok(())
        })??;
        guard.with_mut(|p| -> StorageResult<()> {
            p.init(PageKind::BTreeInternal);
            p.set_extra(leftmost);
            for e in &entries {
                p.push_record(&e.encode())?;
            }
            Ok(())
        })??;
        Ok(Some((promoted.key, right_id)))
    }

    /// Removes one `key → rid` posting, returning whether it existed.
    ///
    /// Lazy deletion: the holding leaf is rebuilt without the entry, but
    /// nodes are never merged or rebalanced — underfull (even empty)
    /// leaves stay in the chain and separators stay in their parents, so
    /// the root never moves and no catalog rewrite is needed. With the
    /// UPDATE/DELETE workloads this serves (and truncation rebuilding
    /// trees outright), space recovers on the next rebuild.
    pub fn delete(&mut self, pool: &BufferPool, key: &Datum, rid: Rid) -> StorageResult<bool> {
        let target = encode_key(key);
        bump(&pool.metrics().btree_descents);
        // Crab to the leftmost leaf that could hold the key.
        let mut guard = descend_to_leaf(pool, self.root, |p| child_for_lookup(p, &target), |_| ())?;
        // Walk the leaf chain while the key may still match, pinning
        // the next leaf before releasing the current one.
        loop {
            let (entries, found, done, next) = guard.with_latched(pool.metrics(), |p| {
                let mut entries = Vec::with_capacity(p.slot_count());
                let mut found = None;
                let mut done = false;
                for record in p.records() {
                    let entry = LeafEntry::decode(record)?;
                    match cmp_keys(&entry.key, &target)? {
                        Ordering::Less => {}
                        Ordering::Equal if entry.rid == rid => found = Some(entries.len()),
                        Ordering::Equal => {}
                        Ordering::Greater => {
                            done = true;
                        }
                    }
                    entries.push(entry);
                }
                Ok::<_, StorageError>((entries, found, done, p.next()))
            })?;
            if let Some(pos) = found {
                let mut entries = entries;
                entries.remove(pos);
                guard.with_mut(|p| -> StorageResult<()> {
                    p.init(PageKind::BTreeLeaf);
                    p.set_next(next);
                    for e in &entries {
                        p.push_record(&e.encode())?;
                    }
                    Ok(())
                })??;
                return Ok(true);
            }
            if done || next == NO_PAGE {
                return Ok(false);
            }
            let next_guard = pool.fetch(next)?; // current leaf still pinned
            guard = next_guard;
        }
    }

    /// All rids posted under `key`, in insertion-stable (key, rid) order.
    pub fn lookup(&self, pool: &BufferPool, key: &Datum) -> StorageResult<Vec<Rid>> {
        let target = encode_key(key);
        bump(&pool.metrics().btree_descents);
        // Crab to the leftmost leaf that could hold the key.
        let mut guard = descend_to_leaf(pool, self.root, |p| child_for_lookup(p, &target), |_| ())?;
        // Walk the leaf chain while keys may still match, pinning the
        // next leaf before releasing the current one so a concurrent
        // split cannot unlink the chain under the cursor.
        let mut rids = Vec::new();
        loop {
            let (matches, done, next) = guard.with_latched(pool.metrics(), |p| {
                let mut matches = Vec::new();
                let mut done = false;
                for record in p.records() {
                    let entry = LeafEntry::decode(record)?;
                    match cmp_keys(&entry.key, &target)? {
                        Ordering::Less => {}
                        Ordering::Equal => matches.push(entry.rid),
                        Ordering::Greater => {
                            done = true;
                            break;
                        }
                    }
                }
                Ok::<_, StorageError>((matches, done, p.next()))
            })?;
            rids.extend(matches);
            if done || next == NO_PAGE {
                break;
            }
            let next_guard = pool.fetch(next)?; // current leaf still pinned
            guard = next_guard;
        }
        Ok(rids)
    }

    /// All rids whose key falls inside `(lower, upper)`, in key order —
    /// the ordered-cursor path behind inequality restrictions (`<`,
    /// `<=`, `>`, `>=`, `BETWEEN`). Descends to the leftmost candidate
    /// leaf for the lower bound, then walks the leaf chain until an
    /// entry exceeds the upper bound, so the cost is proportional to the
    /// matching range, not the table.
    pub fn range(
        &self,
        pool: &BufferPool,
        lower: std::ops::Bound<&Datum>,
        upper: std::ops::Bound<&Datum>,
    ) -> StorageResult<Vec<Rid>> {
        use std::ops::Bound;
        let lower_key = match lower {
            Bound::Included(d) | Bound::Excluded(d) => Some(encode_key(d)),
            Bound::Unbounded => None,
        };
        let upper_key = match upper {
            Bound::Included(d) | Bound::Excluded(d) => Some(encode_key(d)),
            Bound::Unbounded => None,
        };
        bump(&pool.metrics().btree_descents);
        // Crab to the leftmost leaf that could hold the lower bound
        // (the leftmost leaf outright when unbounded below).
        let mut guard = descend_to_leaf(
            pool,
            self.root,
            |p| match &lower_key {
                Some(key) => child_for_lookup(p, key),
                None => Ok(p.extra()),
            },
            |_| (),
        )?;
        // Walk the leaf chain while keys may still fall in range,
        // pinning the next leaf before releasing the current one.
        let mut rids = Vec::new();
        loop {
            let (matches, done, next) = guard.with_latched(pool.metrics(), |p| {
                let mut matches = Vec::new();
                let mut done = false;
                for record in p.records() {
                    let entry = LeafEntry::decode(record)?;
                    if let Some(key) = &lower_key {
                        let ord = cmp_keys(&entry.key, key)?;
                        let below = match lower {
                            Bound::Included(_) => ord == Ordering::Less,
                            _ => ord != Ordering::Greater,
                        };
                        if below {
                            continue;
                        }
                    }
                    if let Some(key) = &upper_key {
                        let ord = cmp_keys(&entry.key, key)?;
                        let above = match upper {
                            Bound::Included(_) => ord == Ordering::Greater,
                            _ => ord != Ordering::Less,
                        };
                        if above {
                            done = true;
                            break;
                        }
                    }
                    matches.push(entry.rid);
                }
                Ok::<_, StorageError>((matches, done, p.next()))
            })?;
            rids.extend(matches);
            if done || next == NO_PAGE {
                break;
            }
            let next_guard = pool.fetch(next)?; // current leaf still pinned
            guard = next_guard;
        }
        Ok(rids)
    }

    /// Every page id of the tree (root, internal nodes, leaves). The
    /// engine hands these to the free list when the index is rebuilt or
    /// dropped. Guarded against pointer cycles like chain walks are.
    pub fn collect_pages(&self, pool: &BufferPool) -> StorageResult<Vec<PageId>> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        let limit = pool.page_count() as usize;
        while let Some(id) = stack.pop() {
            if out.len() > limit {
                return Err(StorageError::Corrupt(
                    "B+-tree cycle: child pointers revisit a page".into(),
                ));
            }
            out.push(id);
            let guard = pool.fetch(id)?;
            match guard.with(|p| p.kind())? {
                PageKind::BTreeLeaf => {}
                PageKind::BTreeInternal => {
                    let children = guard.with(|p| -> StorageResult<Vec<PageId>> {
                        let mut cs = vec![p.extra()];
                        for record in p.records() {
                            cs.push(InternalEntry::decode(record)?.child);
                        }
                        Ok(cs)
                    })?;
                    stack.extend(children);
                }
                other => {
                    return Err(StorageError::Corrupt(format!(
                        "page {id} is {other:?}, expected a B+-tree node"
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Tree height (1 for a lone leaf); test/diagnostic helper.
    pub fn height(&self, pool: &BufferPool) -> StorageResult<usize> {
        let mut h = 1;
        let mut current = self.root;
        loop {
            let guard = pool.fetch(current)?;
            match guard.with(|p| p.kind())? {
                PageKind::BTreeLeaf => return Ok(h),
                PageKind::BTreeInternal => {
                    let child = guard.with(|p| p.extra());
                    drop(guard);
                    current = child;
                    h += 1;
                }
                other => {
                    return Err(StorageError::Corrupt(format!(
                        "unexpected node kind {other:?}"
                    )))
                }
            }
        }
    }
}

/// Latch-crabbing descent from `root` to a leaf: at each internal node,
/// `route` picks the child under the node's frame latch; the child is
/// then pinned and kind-verified **while the parent pin is still
/// held**, and only then is the parent released (lock coupling). The
/// returned guard pins the leaf the descent landed on.
///
/// Concurrent exclusive splits can stale a route between reading the
/// parent and latching the child, but only *leftward* (splits move
/// entries right and never free pages); callers correct by walking the
/// leaf chain forward. `on_step` sees each internal node's id before
/// its child is taken — insert uses it to record the split-propagation
/// path.
fn descend_to_leaf(
    pool: &BufferPool,
    root: PageId,
    mut route: impl FnMut(&Page) -> StorageResult<PageId>,
    mut on_step: impl FnMut(PageId),
) -> StorageResult<PinnedPage> {
    let metrics = pool.metrics();
    let mut current = root;
    let mut guard = pool.fetch(current)?;
    let mut kind = guard.with_latched(metrics, |p| p.kind())?;
    loop {
        match kind {
            PageKind::BTreeLeaf => return Ok(guard),
            PageKind::BTreeInternal => {}
            other => {
                return Err(StorageError::Corrupt(format!(
                    "page {current} is {other:?}, expected a B+-tree node"
                )))
            }
        }
        let child = guard.with_latched(metrics, |p| route(p))?;
        let child_guard = pool.fetch(child)?;
        // Verify before releasing the parent: the child must still be a
        // tree node (the kind is consumed by the next iteration's
        // check, so corruption surfaces with the right page id).
        kind = child_guard.with_latched(metrics, |p| p.kind())?;
        on_step(current);
        guard = child_guard;
        current = child;
    }
}

/// Child to descend into when inserting `key`: the last separator ≤ key
/// (new equal keys go right), else the leftmost child.
fn child_for_insert(page: &Page, key: &[u8]) -> StorageResult<PageId> {
    let mut child = page.extra();
    for record in page.records() {
        let entry = InternalEntry::decode(record)?;
        if cmp_keys(&entry.key, key)? == Ordering::Greater {
            break;
        }
        child = entry.child;
    }
    Ok(child)
}

/// Child to descend into when looking up `key`: the last separator
/// strictly < key, else the leftmost child. Equal separators send the
/// search left because a run of equal keys may begin in the previous
/// subtree; the leaf chain walk picks up the rest.
fn child_for_lookup(page: &Page, key: &[u8]) -> StorageResult<PageId> {
    let mut child = page.extra();
    for record in page.records() {
        let entry = InternalEntry::decode(record)?;
        if cmp_keys(&entry.key, key)? != Ordering::Less {
            break;
        }
        child = entry.child;
    }
    Ok(child)
}

/// Sorted position of `entry` within a leaf, ordering by (key, rid).
fn leaf_position(page: &Page, entry: &LeafEntry) -> StorageResult<usize> {
    let mut pos = 0;
    for record in page.records() {
        let existing = LeafEntry::decode(record)?;
        let ord = cmp_keys(&existing.key, &entry.key)?.then_with(|| existing.rid.cmp(&entry.rid));
        if ord == Ordering::Greater {
            break;
        }
        pos += 1;
    }
    Ok(pos)
}

/// Sorted position of a separator within an internal node (after equal
/// separators).
fn internal_position(page: &Page, key: &[u8]) -> StorageResult<usize> {
    let mut pos = 0;
    for record in page.records() {
        let existing = InternalEntry::decode(record)?;
        if cmp_keys(&existing.key, key)? == Ordering::Greater {
            break;
        }
        pos += 1;
    }
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    fn pool(capacity: usize) -> BufferPool {
        BufferPool::new(Pager::in_memory(), capacity)
    }

    fn rid(n: u32) -> Rid {
        Rid {
            page: n,
            slot: (n % 7) as u16,
        }
    }

    #[test]
    fn single_leaf_insert_and_lookup() {
        let pool = pool(4);
        let mut tree = BPlusTree::create(&pool).unwrap();
        tree.insert(&pool, &Datum::Int(5), rid(1)).unwrap();
        tree.insert(&pool, &Datum::Int(3), rid(2)).unwrap();
        tree.insert(&pool, &Datum::text("x"), rid(3)).unwrap();
        assert_eq!(tree.lookup(&pool, &Datum::Int(5)).unwrap(), vec![rid(1)]);
        assert_eq!(tree.lookup(&pool, &Datum::Int(3)).unwrap(), vec![rid(2)]);
        assert_eq!(tree.lookup(&pool, &Datum::text("x")).unwrap(), vec![rid(3)]);
        assert!(tree.lookup(&pool, &Datum::Int(99)).unwrap().is_empty());
        assert_eq!(tree.height(&pool).unwrap(), 1);
    }

    #[test]
    fn splits_grow_the_tree_and_keep_every_key() {
        let pool = pool(8);
        let mut tree = BPlusTree::create(&pool).unwrap();
        let n = 2000u32;
        // Insert in a scrambled order to exercise mid-node insertion.
        for i in 0..n {
            let key = (i * 7919) % n;
            tree.insert(&pool, &Datum::Int(i64::from(key)), rid(key))
                .unwrap();
        }
        assert!(tree.height(&pool).unwrap() >= 2, "tree should have split");
        for key in 0..n {
            let got = tree.lookup(&pool, &Datum::Int(i64::from(key))).unwrap();
            assert_eq!(got, vec![rid(key)], "key {key}");
        }
        assert!(tree
            .lookup(&pool, &Datum::Int(i64::from(n)))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn duplicate_keys_survive_splits() {
        let pool = pool(8);
        let mut tree = BPlusTree::create(&pool).unwrap();
        // 40 distinct keys × 30 duplicates each, interleaved.
        for round in 0..30u32 {
            for key in 0..40i64 {
                tree.insert(&pool, &Datum::Int(key), rid(round * 100 + key as u32))
                    .unwrap();
            }
        }
        for key in 0..40i64 {
            let got = tree.lookup(&pool, &Datum::Int(key)).unwrap();
            assert_eq!(got.len(), 30, "key {key} lost postings: {got:?}");
            let expected: std::collections::BTreeSet<Rid> =
                (0..30).map(|r| rid(r * 100 + key as u32)).collect();
            assert_eq!(
                got.into_iter().collect::<std::collections::BTreeSet<_>>(),
                expected
            );
        }
    }

    #[test]
    fn text_keys_sort_and_split_correctly() {
        let pool = pool(8);
        let mut tree = BPlusTree::create(&pool).unwrap();
        let n = 600u32;
        for i in 0..n {
            let name = format!("employee_{:04}", (i * 37) % n);
            tree.insert(&pool, &Datum::text(&name), rid(i)).unwrap();
        }
        for i in 0..n {
            let name = format!("employee_{:04}", i);
            assert_eq!(
                tree.lookup(&pool, &Datum::text(&name)).unwrap().len(),
                1,
                "missing {name}"
            );
        }
    }

    #[test]
    fn oversized_keys_rejected_before_mutation() {
        let pool = pool(4);
        let mut tree = BPlusTree::create(&pool).unwrap();
        let huge = "k".repeat(MAX_KEY_LEN + 100);
        assert!(matches!(
            tree.insert(&pool, &Datum::text(&huge), rid(1)),
            Err(StorageError::RecordTooLarge(_))
        ));
        // The tree is untouched and still usable.
        tree.insert(&pool, &Datum::Int(1), rid(2)).unwrap();
        assert_eq!(tree.lookup(&pool, &Datum::Int(1)).unwrap(), vec![rid(2)]);
    }

    #[test]
    fn skewed_key_sizes_split_safely() {
        // Regression: count-based splits could put every large entry in
        // one half, overflowing the rebuilt node after it was wiped.
        // Byte-balanced splits must keep all postings reachable.
        let pool = pool(8);
        let mut tree = BPlusTree::create(&pool).unwrap();
        let big = |i: u32| format!("{:0>width$}", i, width = MAX_KEY_LEN - 20);
        let mut expected = Vec::new();
        for i in 0..120u32 {
            // Interleave near-cap keys with tiny ones, scrambled order.
            let key = if i % 3 == 0 {
                Datum::text(&big((i * 37) % 120))
            } else {
                Datum::Int(i64::from((i * 53) % 120))
            };
            tree.insert(&pool, &key, rid(i)).unwrap();
            expected.push((key, rid(i)));
        }
        for (key, r) in expected {
            let got = tree.lookup(&pool, &key).unwrap();
            assert!(got.contains(&r), "posting lost for {key:?}");
        }
    }

    #[test]
    fn delete_removes_exactly_one_posting() {
        let pool = pool(8);
        let mut tree = BPlusTree::create(&pool).unwrap();
        let n = 2000u32;
        for i in 0..n {
            let key = (i * 7919) % n;
            tree.insert(&pool, &Datum::Int(i64::from(key)), rid(key))
                .unwrap();
        }
        let root_before = tree.root;
        // Delete every third key; the rest must survive untouched.
        for key in (0..n).step_by(3) {
            assert!(tree
                .delete(&pool, &Datum::Int(i64::from(key)), rid(key))
                .unwrap());
        }
        assert_eq!(tree.root, root_before, "lazy deletion never moves the root");
        for key in 0..n {
            let got = tree.lookup(&pool, &Datum::Int(i64::from(key))).unwrap();
            if key % 3 == 0 {
                assert!(got.is_empty(), "key {key} must be gone");
            } else {
                assert_eq!(got, vec![rid(key)], "key {key} must survive");
            }
        }
        // Deleting a missing posting reports false and changes nothing.
        assert!(!tree.delete(&pool, &Datum::Int(0), rid(0)).unwrap());
        assert!(!tree.delete(&pool, &Datum::Int(99_999), rid(1)).unwrap());
    }

    #[test]
    fn delete_picks_the_right_duplicate() {
        let pool = pool(8);
        let mut tree = BPlusTree::create(&pool).unwrap();
        // Duplicate runs long enough to span several leaves.
        for round in 0..30u32 {
            for key in 0..40i64 {
                tree.insert(&pool, &Datum::Int(key), rid(round * 100 + key as u32))
                    .unwrap();
            }
        }
        for round in (0..30u32).step_by(2) {
            assert!(tree
                .delete(&pool, &Datum::Int(17), rid(round * 100 + 17))
                .unwrap());
        }
        let got = tree.lookup(&pool, &Datum::Int(17)).unwrap();
        assert_eq!(got.len(), 15);
        assert!(got.iter().all(|r| (0..30u32)
            .filter(|r2| r2 % 2 == 1)
            .any(|r2| *r == rid(r2 * 100 + 17))));
        // Other keys keep all 30 postings.
        assert_eq!(tree.lookup(&pool, &Datum::Int(16)).unwrap().len(), 30);
    }

    #[test]
    fn range_scan_matches_filtered_lookup() {
        use std::ops::Bound;
        let pool = pool(8);
        let mut tree = BPlusTree::create(&pool).unwrap();
        let n = 2000u32;
        for i in 0..n {
            let key = (i * 7919) % n;
            tree.insert(&pool, &Datum::Int(i64::from(key)), rid(key))
                .unwrap();
        }
        let cases: Vec<(Bound<Datum>, Bound<Datum>, Vec<u32>)> = vec![
            (
                Bound::Included(Datum::Int(100)),
                Bound::Excluded(Datum::Int(110)),
                (100..110).collect(),
            ),
            (
                Bound::Excluded(Datum::Int(1995)),
                Bound::Unbounded,
                (1996..n).collect(),
            ),
            (
                Bound::Unbounded,
                Bound::Included(Datum::Int(5)),
                (0..=5).collect(),
            ),
            (Bound::Unbounded, Bound::Unbounded, (0..n).collect()),
            (
                Bound::Included(Datum::Int(50)),
                Bound::Included(Datum::Int(50)),
                vec![50],
            ),
            (Bound::Included(Datum::Int(3000)), Bound::Unbounded, vec![]),
        ];
        for (lower, upper, expect) in cases {
            let got = tree.range(&pool, lower.as_ref(), upper.as_ref()).unwrap();
            let want: Vec<Rid> = expect.iter().map(|&k| rid(k)).collect();
            assert_eq!(got, want, "range {lower:?}..{upper:?}");
        }
    }

    #[test]
    fn range_scan_reads_fewer_pages_than_full_walk() {
        use std::ops::Bound;
        let pool = pool(4);
        let mut tree = BPlusTree::create(&pool).unwrap();
        for i in 0..3000i64 {
            tree.insert(&pool, &Datum::Int(i), rid(i as u32)).unwrap();
        }
        let before = pool.stats();
        let narrow = tree
            .range(
                &pool,
                Bound::Included(&Datum::Int(1500)),
                Bound::Excluded(&Datum::Int(1510)),
            )
            .unwrap();
        let narrow_cost = {
            let s = pool.stats();
            (s.page_reads + s.buffer_hits) - (before.page_reads + before.buffer_hits)
        };
        assert_eq!(narrow.len(), 10);
        let before = pool.stats();
        let full = tree
            .range(&pool, Bound::Unbounded, Bound::Unbounded)
            .unwrap();
        let full_cost = {
            let s = pool.stats();
            (s.page_reads + s.buffer_hits) - (before.page_reads + before.buffer_hits)
        };
        assert_eq!(full.len(), 3000);
        assert!(
            narrow_cost * 4 < full_cost,
            "narrow range touched {narrow_cost} pages, full walk {full_cost}"
        );
    }

    #[test]
    fn collect_pages_covers_the_whole_tree() {
        let pool = pool(8);
        let mut tree = BPlusTree::create(&pool).unwrap();
        for i in 0..1200i64 {
            tree.insert(&pool, &Datum::Int(i), rid(i as u32)).unwrap();
        }
        assert!(tree.height(&pool).unwrap() >= 2);
        let pages = tree.collect_pages(&pool).unwrap();
        assert!(pages.contains(&tree.root));
        // Every allocated page belongs to this tree (nothing else was
        // created on this pool), so the sets must match exactly.
        let mut sorted: Vec<PageId> = pages.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), pages.len(), "no page listed twice");
        assert_eq!(sorted.len(), pool.page_count() as usize);
    }

    #[test]
    fn works_under_minimal_buffer_pool() {
        // Pool far smaller than the tree: every descent faults pages in.
        let pool = pool(3);
        let mut tree = BPlusTree::create(&pool).unwrap();
        for i in 0..1500i64 {
            tree.insert(&pool, &Datum::Int(i), rid(i as u32)).unwrap();
        }
        for i in (0..1500i64).step_by(97) {
            assert_eq!(
                tree.lookup(&pool, &Datum::Int(i)).unwrap(),
                vec![rid(i as u32)]
            );
        }
        let stats = pool.stats();
        assert!(stats.page_reads > 0 && stats.buffer_hits > 0, "{stats:?}");
    }
}

//! The "disk": page-granular storage behind the buffer pool.
//!
//! Two modes share one interface: an anonymous in-memory page vector
//! (what the benchmarks use — still exercising the full page/buffer
//! machinery and its counters), and a real file whose offset `i *
//! PAGE_SIZE` holds page `i` (what persistence tests use).

use crate::page::{Page, PageId, PAGE_SIZE};
use crate::{StorageError, StorageResult};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

pub enum Pager {
    Mem(Vec<Box<Page>>),
    File { file: File, page_count: u32 },
}

impl Pager {
    /// An anonymous in-memory database.
    pub fn in_memory() -> Pager {
        Pager::Mem(Vec::new())
    }

    /// Opens (or creates) a database file. The file length must be a
    /// multiple of the page size.
    pub fn open(path: &Path) -> StorageResult<Pager> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} is not a multiple of the {PAGE_SIZE}-byte page size"
            )));
        }
        Ok(Pager::File {
            file,
            page_count: (len / PAGE_SIZE as u64) as u32,
        })
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u32 {
        match self {
            Pager::Mem(pages) => pages.len() as u32,
            Pager::File { page_count, .. } => *page_count,
        }
    }

    /// Appends one zeroed page and returns its id.
    pub fn allocate(&mut self) -> StorageResult<PageId> {
        let id = self.page_count();
        match self {
            Pager::Mem(pages) => pages.push(Page::zeroed()),
            Pager::File { file, page_count } => {
                file.seek(SeekFrom::Start(u64::from(id) * PAGE_SIZE as u64))?;
                file.write_all(Page::zeroed().as_bytes())?;
                *page_count += 1;
            }
        }
        Ok(id)
    }

    fn check_bounds(&self, id: PageId) -> StorageResult<()> {
        if id >= self.page_count() {
            return Err(StorageError::Internal(format!(
                "page {id} out of bounds ({} allocated)",
                self.page_count()
            )));
        }
        Ok(())
    }

    /// Reads page `id` into `out`.
    pub fn read(&mut self, id: PageId, out: &mut Page) -> StorageResult<()> {
        self.check_bounds(id)?;
        match self {
            Pager::Mem(pages) => out.copy_from(&pages[id as usize]),
            Pager::File { file, .. } => {
                file.seek(SeekFrom::Start(u64::from(id) * PAGE_SIZE as u64))?;
                file.read_exact(out.as_bytes_mut())?;
            }
        }
        Ok(())
    }

    /// Writes `page` at id `id`.
    pub fn write(&mut self, id: PageId, page: &Page) -> StorageResult<()> {
        self.check_bounds(id)?;
        match self {
            Pager::Mem(pages) => pages[id as usize].copy_from(page),
            Pager::File { file, .. } => {
                file.seek(SeekFrom::Start(u64::from(id) * PAGE_SIZE as u64))?;
                file.write_all(page.as_bytes())?;
            }
        }
        Ok(())
    }

    /// Flushes file-backed storage to the OS.
    pub fn sync(&mut self) -> StorageResult<()> {
        if let Pager::File { file, .. } = self {
            file.sync_all()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;

    fn round_trip(pager: &mut Pager) {
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        assert_eq!((a, b), (0, 1));
        let mut page = Page::zeroed();
        page.init(PageKind::Heap);
        page.push_record(b"payload").unwrap();
        pager.write(b, &page).unwrap();
        let mut out = Page::zeroed();
        pager.read(b, &mut out).unwrap();
        assert_eq!(out.record(0), b"payload");
        pager.read(a, &mut out).unwrap();
        assert_eq!(out.slot_count(), 0);
        assert!(pager.read(99, &mut out).is_err());
    }

    #[test]
    fn memory_pager_round_trip() {
        round_trip(&mut Pager::in_memory());
    }

    #[test]
    fn file_pager_round_trip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("rqs-pager-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.pages");
        let _ = std::fs::remove_file(&path);
        {
            let mut pager = Pager::open(&path).unwrap();
            round_trip(&mut pager);
            pager.sync().unwrap();
        }
        // Reopen: contents survive.
        let mut pager = Pager::open(&path).unwrap();
        assert_eq!(pager.page_count(), 2);
        let mut out = Page::zeroed();
        pager.read(1, &mut out).unwrap();
        assert_eq!(out.record(0), b"payload");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn misaligned_file_rejected() {
        let dir = std::env::temp_dir().join(format!("rqs-pager-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.pages");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(matches!(Pager::open(&path), Err(StorageError::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }
}

//! The "disk": page-granular storage behind the buffer pool.
//!
//! Three modes share one interface: an anonymous in-memory page vector
//! (what the benchmarks use — still exercising the full page/buffer
//! machinery and its counters), a real file whose offset `i *
//! PAGE_SIZE` holds page `i` (what persistence tests use), and a
//! fault-injecting wrapper around either (what the crash-recovery
//! harness uses to make durable writes fail on demand).

use crate::page::{Page, PageId, PAGE_SIZE};
use crate::{StorageError, StorageResult};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A shared fault-injection switch, cloned into the pager (and the WAL)
/// by [`crate::engine::StorageEngine::open_with_fault`]. Arming it makes
/// the next `n` durable write operations (page writes, page
/// allocations, WAL appends, syncs) succeed and every one after that
/// fail with [`StorageError::Io`], modelling a disk that runs out of
/// space or starts erroring mid-workload. Reads never fault: after an
/// injected failure the engine must still be able to *look at* its
/// state so tests can assert it stayed consistent.
///
/// The budget is a single atomic (negative = disarmed) so the switch
/// can be shared across the server's session threads.
#[derive(Clone, Debug)]
pub struct Fault {
    writes_remaining: Arc<AtomicI64>,
}

impl Default for Fault {
    fn default() -> Fault {
        Fault {
            writes_remaining: Arc::new(AtomicI64::new(-1)),
        }
    }
}

impl Fault {
    /// An unarmed fault switch: everything succeeds until armed.
    pub fn new() -> Fault {
        Fault::default()
    }

    /// Arms the switch: `n` more durable writes succeed, then all fail.
    pub fn fail_after_writes(&self, n: u64) {
        self.writes_remaining
            .store(n.min(i64::MAX as u64) as i64, Ordering::SeqCst);
    }

    /// Disarms the switch; subsequent writes succeed again.
    pub fn heal(&self) {
        self.writes_remaining.store(-1, Ordering::SeqCst);
    }

    /// Charges one durable write against the budget.
    pub(crate) fn tap(&self) -> StorageResult<()> {
        let seen = self
            .writes_remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                if v > 0 {
                    Some(v - 1)
                } else {
                    None // disarmed (negative) or exhausted (0): unchanged
                }
            })
            .unwrap_or_else(|v| v);
        if seen == 0 {
            Err(StorageError::Io("injected write fault".into()))
        } else {
            Ok(())
        }
    }
}

pub enum Pager {
    Mem(Vec<Box<Page>>),
    File { file: File, page_count: u32 },
    Faulty { inner: Box<Pager>, fault: Fault },
}

impl Pager {
    /// An anonymous in-memory database.
    pub fn in_memory() -> Pager {
        Pager::Mem(Vec::new())
    }

    /// Opens (or creates) a database file. The file length must be a
    /// multiple of the page size.
    pub fn open(path: &Path) -> StorageResult<Pager> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} is not a multiple of the {PAGE_SIZE}-byte page size"
            )));
        }
        Ok(Pager::File {
            file,
            page_count: (len / PAGE_SIZE as u64) as u32,
        })
    }

    /// Wraps any pager in the fault-injecting shim driven by `fault`.
    pub fn faulty(inner: Pager, fault: Fault) -> Pager {
        Pager::Faulty {
            inner: Box::new(inner),
            fault,
        }
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u32 {
        match self {
            Pager::Mem(pages) => pages.len() as u32,
            Pager::File { page_count, .. } => *page_count,
            Pager::Faulty { inner, .. } => inner.page_count(),
        }
    }

    /// Appends one zeroed page and returns its id.
    pub fn allocate(&mut self) -> StorageResult<PageId> {
        let id = self.page_count();
        match self {
            Pager::Mem(pages) => pages.push(Page::zeroed()),
            Pager::File { file, page_count } => {
                file.seek(SeekFrom::Start(u64::from(id) * PAGE_SIZE as u64))?;
                file.write_all(Page::zeroed().as_bytes())?;
                *page_count += 1;
            }
            Pager::Faulty { inner, fault } => {
                fault.tap()?;
                return inner.allocate();
            }
        }
        Ok(id)
    }

    /// Grows the pager until at least `n` pages exist (WAL recovery may
    /// replay images of pages allocated after the last durable file
    /// extension).
    pub fn ensure_page_count(&mut self, n: u32) -> StorageResult<()> {
        while self.page_count() < n {
            self.allocate()?;
        }
        Ok(())
    }

    fn check_bounds(&self, id: PageId) -> StorageResult<()> {
        if id >= self.page_count() {
            return Err(StorageError::Internal(format!(
                "page {id} out of bounds ({} allocated)",
                self.page_count()
            )));
        }
        Ok(())
    }

    /// Reads page `id` into `out`.
    pub fn read(&mut self, id: PageId, out: &mut Page) -> StorageResult<()> {
        self.check_bounds(id)?;
        match self {
            Pager::Mem(pages) => out.copy_from(&pages[id as usize]),
            Pager::File { file, .. } => {
                file.seek(SeekFrom::Start(u64::from(id) * PAGE_SIZE as u64))?;
                file.read_exact(out.as_bytes_mut())?;
            }
            Pager::Faulty { inner, .. } => inner.read(id, out)?,
        }
        Ok(())
    }

    /// Writes `page` at id `id`.
    pub fn write(&mut self, id: PageId, page: &Page) -> StorageResult<()> {
        self.check_bounds(id)?;
        match self {
            Pager::Mem(pages) => pages[id as usize].copy_from(page),
            Pager::File { file, .. } => {
                file.seek(SeekFrom::Start(u64::from(id) * PAGE_SIZE as u64))?;
                file.write_all(page.as_bytes())?;
            }
            Pager::Faulty { inner, fault } => {
                fault.tap()?;
                inner.write(id, page)?;
            }
        }
        Ok(())
    }

    /// Flushes file-backed storage to the OS.
    pub fn sync(&mut self) -> StorageResult<()> {
        match self {
            Pager::File { file, .. } => file.sync_all()?,
            Pager::Faulty { inner, fault } => {
                fault.tap()?;
                inner.sync()?;
            }
            Pager::Mem(_) => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;

    fn round_trip(pager: &mut Pager) {
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        assert_eq!((a, b), (0, 1));
        let mut page = Page::zeroed();
        page.init(PageKind::Heap);
        page.push_record(b"payload").unwrap();
        pager.write(b, &page).unwrap();
        let mut out = Page::zeroed();
        pager.read(b, &mut out).unwrap();
        assert_eq!(out.record(0), b"payload");
        pager.read(a, &mut out).unwrap();
        assert_eq!(out.slot_count(), 0);
        assert!(pager.read(99, &mut out).is_err());
    }

    #[test]
    fn memory_pager_round_trip() {
        round_trip(&mut Pager::in_memory());
    }

    #[test]
    fn file_pager_round_trip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("rqs-pager-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.pages");
        let _ = std::fs::remove_file(&path);
        {
            let mut pager = Pager::open(&path).unwrap();
            round_trip(&mut pager);
            pager.sync().unwrap();
        }
        // Reopen: contents survive.
        let mut pager = Pager::open(&path).unwrap();
        assert_eq!(pager.page_count(), 2);
        let mut out = Page::zeroed();
        pager.read(1, &mut out).unwrap();
        assert_eq!(out.record(0), b"payload");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fault_injection_fails_writes_after_budget() {
        let fault = Fault::new();
        let mut pager = Pager::faulty(Pager::in_memory(), fault.clone());
        let a = pager.allocate().unwrap();
        let mut page = Page::zeroed();
        page.init(PageKind::Heap);
        page.push_record(b"ok").unwrap();
        pager.write(a, &page).unwrap();
        // Budget of 1: the next write succeeds, the one after fails.
        fault.fail_after_writes(1);
        pager.write(a, &page).unwrap();
        assert!(matches!(pager.write(a, &page), Err(StorageError::Io(_))));
        assert!(matches!(pager.allocate(), Err(StorageError::Io(_))));
        assert!(matches!(pager.sync(), Err(StorageError::Io(_))));
        // Reads keep working so post-fault state can be inspected.
        let mut out = Page::zeroed();
        pager.read(a, &mut out).unwrap();
        assert_eq!(out.record(0), b"ok");
        fault.heal();
        pager.write(a, &page).unwrap();
        pager.sync().unwrap();
    }

    #[test]
    fn misaligned_file_rejected() {
        let dir = std::env::temp_dir().join(format!("rqs-pager-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.pages");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(matches!(Pager::open(&path), Err(StorageError::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }
}

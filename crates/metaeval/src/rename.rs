//! Variable-free renaming: raw unfolded branches → DBCL queries.
//!
//! §3's convention: "Constants are translated into themselves.
//! Universally quantified variables of the original goal clause are
//! preceded by a `t_` … Other variables are preceded by a `v_` and a
//! number is appended to them to distinguish between different variables
//! addressing the same attribute."
//!
//! Variables are named after the attribute of their first occurrence:
//! the first `eno` variable becomes `v_eno1`, the next distinct one
//! `v_eno2`, and so on.

use crate::unfold::{comparison_op, RawBranch};
use crate::{MetaBranch, MetaError, Result};
use dbcl::{DatabaseDef, DbclQuery, Entry, Operand, Row, Symbol, Value};
use prolog::{Term, VarId};
use std::collections::HashMap;

struct Namer {
    map: HashMap<VarId, Symbol>,
    counters: HashMap<String, usize>,
}

impl Namer {
    fn new() -> Self {
        Namer {
            map: HashMap::new(),
            counters: HashMap::new(),
        }
    }

    fn assign(&mut self, var: VarId, attr: &str) -> Symbol {
        if let Some(sym) = self.map.get(&var) {
            return *sym;
        }
        let n = self.counters.entry(attr.to_owned()).or_insert(0);
        *n += 1;
        let sym = Symbol::var(&format!("{attr}{n}"));
        self.map.insert(var, sym);
        sym
    }

    fn lookup(&self, var: VarId) -> Option<Symbol> {
        self.map.get(&var).copied()
    }
}

fn const_of(term: &Term) -> Option<Value> {
    match term {
        Term::Int(i) => Some(Value::Int(*i)),
        Term::Atom(a) => Some(Value::Sym(*a)),
        _ => None,
    }
}

/// What to do when two target variables address the same attribute column.
///
/// The universal-relation targetlist of §3 has one slot per column, so
/// `works_for(t_low, t_high)` — where both targets are employee names —
/// is not representable. The general pipeline reports this; the recursion
/// machinery keeps the first target in the list (both symbols still occur
/// in the relation references, so SQL generation can select either).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TargetConflict {
    Error,
    FirstWins,
}

/// Converts one raw branch into a typed DBCL query plus residue.
pub fn branch_to_dbcl(branch: &RawBranch, db: &DatabaseDef, view_name: &str) -> Result<MetaBranch> {
    branch_to_dbcl_with(branch, db, view_name, TargetConflict::Error)
}

/// [`branch_to_dbcl`] with explicit target-conflict handling.
pub fn branch_to_dbcl_with(
    branch: &RawBranch,
    db: &DatabaseDef,
    view_name: &str,
    conflict: TargetConflict,
) -> Result<MetaBranch> {
    let mut namer = Namer::new();
    // Targets claim their variables first, keeping the `t_` names.
    for (name, term) in &branch.targets {
        match term {
            Term::Var(v) => {
                namer.map.entry(*v).or_insert_with(|| Symbol::target(name));
            }
            // A target bound to a constant would need literal SELECT items;
            // SQL-84 (and rule 2) has no home for it.
            other => {
                return Err(MetaError(format!(
                    "target variable t_{name} was bound to {other} during unfolding"
                )))
            }
        }
    }

    let mut query = DbclQuery::new(db, view_name);

    // Rows from collected dbcalls.
    for call in &branch.dbcalls {
        let Term::Struct(rel, args) = call else {
            return Err(MetaError(format!("malformed database call: {call}")));
        };
        let rel_def = db
            .relation(*rel)
            .ok_or_else(|| MetaError(format!("unknown relation {rel}")))?;
        if args.len() != rel_def.arity() {
            return Err(MetaError(format!(
                "{rel} expects {} arguments, got {}",
                rel_def.arity(),
                args.len()
            )));
        }
        let cols = db.relation_columns(*rel)?;
        let mut row = Row::blank(db, *rel)?;
        for (pos, arg) in args.iter().enumerate() {
            let attr = rel_def.attrs[pos];
            let entry = match arg {
                Term::Var(v) => Entry::Sym(namer.assign(*v, attr.as_str())),
                _ => Entry::Const(const_of(arg).ok_or_else(|| {
                    MetaError(format!("database call argument is not atomic: {arg}"))
                })?),
            };
            row.entries[cols[pos]] = entry;
        }
        query.rows.push(row);
    }

    // Target list entries at the column of each target's first occurrence.
    for (name, term) in &branch.targets {
        let Term::Var(v) = term else {
            unreachable!("checked above")
        };
        let sym = namer.lookup(*v).expect("target pre-assigned");
        let (_, col) = query.first_row_occurrence(sym).ok_or_else(|| {
            MetaError(format!("target t_{name} never reaches a database relation"))
        })?;
        match &query.target[col] {
            Entry::Sym(existing) if *existing != sym => match conflict {
                TargetConflict::Error => {
                    return Err(MetaError(format!(
                        "targets t_{name} and {existing} both address column {}; \
                         the DBCL targetlist has one slot per attribute",
                        query.attributes[col]
                    )))
                }
                TargetConflict::FirstWins => {}
            },
            _ => query.target[col] = Entry::Sym(sym),
        }
    }

    // Comparisons. A comparison whose variable never touches a database
    // relation constrains internal computation only — it joins the residue
    // (evaluated stepwise in Prolog, §7) instead of Relcomparisons.
    let mut internal_comparisons: Vec<Term> = Vec::new();
    for comp in &branch.comparisons {
        let Term::Struct(f, args) = comp else {
            return Err(MetaError(format!("malformed comparison: {comp}")));
        };
        let op = comparison_op(f.as_str())
            .ok_or_else(|| MetaError(format!("unknown comparison {f}")))?;
        let operand = |t: &Term| -> Result<Option<Operand>> {
            match t {
                Term::Var(v) => Ok(namer.lookup(*v).map(Operand::Sym)),
                _ => const_of(t)
                    .map(|c| Some(Operand::Const(c)))
                    .ok_or_else(|| MetaError(format!("comparison operand is not atomic: {t}"))),
            }
        };
        match (operand(&args[0])?, operand(&args[1])?) {
            (Some(lhs), Some(rhs)) => {
                query.comparisons.push(dbcl::Comparison::new(op, lhs, rhs));
            }
            _ => internal_comparisons.push(comp.clone()),
        }
    }

    // Residual goals in variable-free spelling (database-independent
    // comparisons join them).
    let mut res_counter = 0usize;
    let residual = branch
        .residual
        .iter()
        .chain(&internal_comparisons)
        .map(|g| freeze_term(g, &mut namer, &mut res_counter))
        .collect();

    Ok(MetaBranch {
        query,
        residual,
        recursion_level: branch.recursion_level,
    })
}

/// Rewrites variables in a residual goal into their variable-free
/// spelling (`t_X`, `v_eno1`, or a fresh `v_res<i>` for residual-only
/// variables).
fn freeze_term(term: &Term, namer: &mut Namer, res_counter: &mut usize) -> Term {
    match term {
        Term::Var(v) => {
            let sym = namer.lookup(*v).unwrap_or_else(|| {
                *res_counter += 1;
                let sym = Symbol::var(&format!("res{res_counter}"));
                namer.map.insert(*v, sym);
                sym
            });
            Term::atom(&sym.to_string())
        }
        Term::Struct(f, args) => Term::Struct(
            *f,
            args.iter()
                .map(|a| freeze_term(a, namer, res_counter))
                .collect(),
        ),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unfold::{unfold, UnfoldLimits};
    use prolog::Engine;

    fn first_branch(views: &str, goal: &str) -> MetaBranch {
        let mut engine = Engine::new();
        engine.consult(views).unwrap();
        let db = DatabaseDef::empdep();
        let term = prolog::parse_term(goal).unwrap();
        let goals = prolog::parser::flatten_conjunction(&term);
        let out = unfold(engine.kb(), &db, &goals, UnfoldLimits::default()).unwrap();
        branch_to_dbcl(&out.branches[0], &db, "test_view").unwrap()
    }

    #[test]
    fn attribute_based_naming() {
        let b = first_branch("", "empl(E, t_X, S, D)");
        let q = &b.query;
        assert_eq!(q.rows[0].entries[0], Entry::var("eno1"));
        assert_eq!(q.rows[0].entries[1], Entry::target("X"));
        assert_eq!(q.rows[0].entries[2], Entry::var("sal1"));
        assert_eq!(q.rows[0].entries[3], Entry::var("dno1"));
    }

    #[test]
    fn repeated_attr_vars_numbered() {
        let b = first_branch("", "empl(E1, t_X, S1, D), empl(E2, jones, S2, D)");
        let q = &b.query;
        assert_eq!(q.rows[0].entries[0], Entry::var("eno1"));
        assert_eq!(q.rows[1].entries[0], Entry::var("eno2"));
        // Shared D keeps one name in both rows (the equijoin).
        assert_eq!(q.rows[0].entries[3], q.rows[1].entries[3]);
    }

    #[test]
    fn same_column_targets_conflict() {
        // Both targets are employee names: not representable in the §3
        // targetlist — an error by default, first-wins on request.
        let mut engine = Engine::new();
        engine.consult("").unwrap();
        let db = DatabaseDef::empdep();
        let term = prolog::parse_term("empl(E1, t_X, S1, D), empl(E2, t_Y, S2, D)").unwrap();
        let goals = prolog::parser::flatten_conjunction(&term);
        let out = unfold(engine.kb(), &db, &goals, UnfoldLimits::default()).unwrap();
        assert!(branch_to_dbcl(&out.branches[0], &db, "v").is_err());
        let b = branch_to_dbcl_with(&out.branches[0], &db, "v", TargetConflict::FirstWins).unwrap();
        assert_eq!(b.query.target[1], Entry::target("X"));
        // t_Y still anchors its row even though the targetlist dropped it.
        assert_eq!(b.query.rows[1].entries[1], Entry::target("Y"));
    }

    #[test]
    fn cross_column_variable_named_by_first_occurrence() {
        let b = first_branch("", "dept(D, F, M), empl(M, t_X, S, D2)");
        let q = &b.query;
        // M first occurs at dept.mgr → named v_mgr1, reused at empl.eno.
        assert_eq!(q.rows[0].entries[5], Entry::var("mgr1"));
        assert_eq!(q.rows[1].entries[0], Entry::var("mgr1"));
    }

    #[test]
    fn constants_pass_through() {
        let b = first_branch("", "empl(1, smiley, S, D)");
        let q = &b.query;
        assert_eq!(q.rows[0].entries[0], Entry::int(1));
        assert_eq!(q.rows[0].entries[1], Entry::sym_const("smiley"));
    }

    #[test]
    fn comparisons_renamed_consistently() {
        let b = first_branch("", "empl(E, t_X, S, D), less(S, 40000)");
        let q = &b.query;
        assert_eq!(q.comparisons.len(), 1);
        assert_eq!(q.comparisons[0].lhs, Operand::Sym(Symbol::var("sal1")));
        assert_eq!(q.comparisons[0].rhs, Operand::Const(Value::Int(40000)));
    }

    #[test]
    fn operator_spelled_comparisons() {
        let b = first_branch("", "empl(E, t_X, S, D), S < 40000");
        assert_eq!(b.query.comparisons[0].op, dbcl::CompOp::Less);
    }

    #[test]
    fn residual_goals_frozen() {
        let b = first_branch("", "empl(E, t_X, S, D), specialist(t_X, Skill)");
        assert_eq!(b.residual.len(), 1);
        let text = b.residual[0].to_string();
        assert!(text.starts_with("specialist(t_X, "), "{text}");
        assert!(text.contains("v_res1"), "{text}");
    }

    #[test]
    fn generated_queries_validate() {
        let b = first_branch(crate::views::SAME_MANAGER, "same_manager(t_X, jones)");
        b.query.validate(&DatabaseDef::empdep()).unwrap();
    }
}

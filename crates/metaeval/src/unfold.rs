//! View unfolding: simulating Prolog's deduction without executing
//! database goals.
//!
//! The unfolder runs a depth-first SLD-style expansion in which
//! base-relation goals and comparison goals are *collected* instead of
//! solved. Each complete expansion path becomes one conjunctive branch.
//! Recursive predicates are expanded up to a configurable depth,
//! producing the naive query sequence of Example 7-1.

use crate::{MetaError, Result};
use dbcl::DatabaseDef;
use prolog::unify::Bindings;
use prolog::{Atom, KnowledgeBase, PredKey, Term, VarId};
use std::collections::HashMap;

/// Expansion limits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnfoldLimits {
    /// Maximum number of times a recursive predicate may be re-entered on
    /// one branch (= number of generated sequence steps).
    pub max_recursion_depth: usize,
    /// Upper bound on generated branches (guards against clause blowup).
    pub max_branches: usize,
}

impl Default for UnfoldLimits {
    fn default() -> Self {
        UnfoldLimits {
            max_recursion_depth: 4,
            max_branches: 256,
        }
    }
}

/// A fully resolved conjunctive expansion path.
#[derive(Debug, Clone, PartialEq)]
pub struct RawBranch {
    /// Collected base-relation goals, in encounter order.
    pub dbcalls: Vec<Term>,
    /// Collected comparison goals.
    pub comparisons: Vec<Term>,
    /// Goals neither the database nor the knowledge base can handle.
    pub residual: Vec<Term>,
    /// Resolved value of every target variable, by name (without `t_`).
    pub targets: Vec<(String, Term)>,
    /// Number of recursive re-entries along this path.
    pub recursion_level: usize,
}

/// Unfolding result.
#[derive(Debug, Clone, PartialEq)]
pub struct UnfoldResult {
    pub branches: Vec<RawBranch>,
    pub recursive: bool,
    pub truncated: bool,
}

/// Comparison predicates collected into `Relcomparisons`; both the paper's
/// names and the operator spellings are accepted.
pub fn comparison_op(name: &str) -> Option<dbcl::CompOp> {
    use dbcl::CompOp::*;
    Some(match name {
        "less" | "<" => Less,
        "greater" | ">" => Greater,
        "leq" | "=<" => Leq,
        "geq" | ">=" => Geq,
        "eq" | "=:=" => Eq,
        "neq" | "=\\=" | "\\==" => Neq,
        _ => return None,
    })
}

struct Unfolder<'a> {
    kb: &'a KnowledgeBase,
    db: &'a DatabaseDef,
    limits: UnfoldLimits,
    bindings: Bindings,
    targets: Vec<(String, VarId)>,
    branches: Vec<RawBranch>,
    recursive: bool,
    truncated: bool,
}

/// Replaces `t_…` atoms by shared fresh variables, recording the mapping.
fn lift_targets(term: &Term, bindings: &mut Bindings, targets: &mut Vec<(String, VarId)>) -> Term {
    match term {
        Term::Atom(a) => {
            if let Some(name) = a.as_str().strip_prefix("t_") {
                if let Some((_, v)) = targets.iter().find(|(n, _)| n == name) {
                    return Term::Var(*v);
                }
                let v = VarId(bindings.alloc(1));
                targets.push((name.to_owned(), v));
                Term::Var(v)
            } else {
                term.clone()
            }
        }
        Term::Struct(f, args) => Term::Struct(
            *f,
            args.iter()
                .map(|t| lift_targets(t, bindings, targets))
                .collect(),
        ),
        other => other.clone(),
    }
}

impl<'a> Unfolder<'a> {
    fn is_relation(&self, name: Atom, arity: usize) -> bool {
        self.db
            .relation(name)
            .is_some_and(|rel| rel.arity() == arity)
    }

    fn capture(&mut self, dbcalls: &[Term], comps: &[Term], residual: &[Term], level: usize) {
        if self.branches.len() >= self.limits.max_branches {
            self.truncated = true;
            return;
        }
        let resolve_all =
            |terms: &[Term], b: &Bindings| terms.iter().map(|t| b.resolve(t)).collect();
        self.branches.push(RawBranch {
            dbcalls: resolve_all(dbcalls, &self.bindings),
            comparisons: resolve_all(comps, &self.bindings),
            residual: resolve_all(residual, &self.bindings),
            targets: self
                .targets
                .iter()
                .map(|(name, v)| (name.clone(), self.bindings.resolve(&Term::Var(*v))))
                .collect(),
            recursion_level: level,
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &mut self,
        goals: &[Term],
        dbcalls: &mut Vec<Term>,
        comps: &mut Vec<Term>,
        residual: &mut Vec<Term>,
        active: &mut HashMap<PredKey, usize>,
        level: usize,
    ) -> Result<()> {
        if self.branches.len() >= self.limits.max_branches {
            self.truncated = true;
            return Ok(());
        }
        let Some((goal, rest)) = goals.split_first() else {
            self.capture(dbcalls, comps, residual, level);
            return Ok(());
        };
        let goal = self.bindings.deref(goal);
        let Some((name, arity)) = goal.functor() else {
            return Err(MetaError(format!("goal is not callable: {goal}")));
        };
        let name_str = name.as_str();

        // Control constructs.
        match (name_str, arity) {
            // Call-exit sentinel: the body of the predicate named in the
            // sentinel has been fully consumed, so its activation ends here
            // (re-opened on backtrack).
            ("$pop", 2) => {
                let Term::Struct(_, args) = &goal else {
                    unreachable!("functor checked")
                };
                let (Term::Atom(pname), Term::Int(parity)) = (&args[0], &args[1]) else {
                    return Err(MetaError(format!("malformed sentinel {goal}")));
                };
                let key = PredKey {
                    name: *pname,
                    arity: *parity as usize,
                };
                *active.get_mut(&key).expect("sentinel for active call") -= 1;
                self.dfs(rest, dbcalls, comps, residual, active, level)?;
                *active.get_mut(&key).expect("sentinel for active call") += 1;
                return Ok(());
            }
            ("true", 0) | ("!", 0) => {
                // Cut is a search-control device; the collected query is
                // set-oriented, so it is a no-op here (§7 discusses richer
                // treatments).
                return self.dfs(rest, dbcalls, comps, residual, active, level);
            }
            (",", 2) => {
                let Term::Struct(_, args) = &goal else {
                    unreachable!("functor checked")
                };
                let mut expanded = prolog::parser::flatten_conjunction(&args[0]);
                expanded.extend(prolog::parser::flatten_conjunction(&args[1]));
                expanded.extend_from_slice(rest);
                return self.dfs(&expanded, dbcalls, comps, residual, active, level);
            }
            (";", 2) => {
                let Term::Struct(_, args) = &goal else {
                    unreachable!("functor checked")
                };
                for side in [&args[0], &args[1]] {
                    let mut expanded = prolog::parser::flatten_conjunction(side);
                    expanded.extend_from_slice(rest);
                    self.dfs(&expanded, dbcalls, comps, residual, active, level)?;
                }
                return Ok(());
            }
            ("=", 2) => {
                let Term::Struct(_, args) = &goal else {
                    unreachable!("functor checked")
                };
                let mark = self.bindings.mark();
                if self.bindings.unify(&args[0], &args[1]) {
                    self.dfs(rest, dbcalls, comps, residual, active, level)?;
                }
                self.bindings.undo_to(mark);
                return Ok(());
            }
            _ => {}
        }

        // Base relation: collect, don't execute.
        if self.is_relation(name, arity) {
            dbcalls.push(goal.clone());
            self.dfs(rest, dbcalls, comps, residual, active, level)?;
            dbcalls.pop();
            return Ok(());
        }
        // Comparison: collect into Relcomparisons.
        if arity == 2 && comparison_op(name_str).is_some() {
            comps.push(goal.clone());
            self.dfs(rest, dbcalls, comps, residual, active, level)?;
            comps.pop();
            return Ok(());
        }
        // View defined in the knowledge base: unfold through its clauses.
        //
        // Only *rule* clauses (and non-ground fact schemas) are intensional
        // view definitions. Ground facts are extensional internal data —
        // either user knowledge like `specialist(jones, guns)` or answers
        // the coupling layer cached back into the knowledge base — and are
        // evaluated by the Prolog engine, not compiled into database calls.
        let key = PredKey { name, arity };
        let clauses = self.kb.clauses(key);
        let rule_clauses: Vec<usize> = clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| !(c.body.is_empty() && c.head.is_ground()))
            .map(|(i, _)| i)
            .collect();
        if self.kb.defines(key) && !rule_clauses.is_empty() {
            let depth = active.entry(key).or_insert(0);
            let reentry = *depth > 0;
            if reentry {
                self.recursive = true;
            }
            if *depth >= self.limits.max_recursion_depth {
                self.truncated = true;
                return Ok(()); // prune this branch
            }
            *depth += 1;
            // Closes this activation once the body goals are consumed, so
            // sibling calls later in the conjunction do not look recursive.
            let sentinel = Term::app("$pop", vec![Term::Atom(name), Term::Int(arity as i64)]);
            for &idx in &rule_clauses {
                let clause = &clauses[idx];
                let mark = self.bindings.mark();
                let slots = self.bindings.len();
                let base = self.bindings.alloc(clause.nvars);
                let head = clause.head.offset_vars(base);
                if self.bindings.unify(&goal, &head) {
                    let mut expanded: Vec<Term> =
                        clause.body.iter().map(|g| g.offset_vars(base)).collect();
                    expanded.push(sentinel.clone());
                    expanded.extend_from_slice(rest);
                    let next_level = if reentry { level + 1 } else { level };
                    self.dfs(&expanded, dbcalls, comps, residual, active, next_level)?;
                }
                self.bindings.undo_to(mark);
                self.bindings.truncate(slots);
            }
            *active.get_mut(&key).expect("just inserted") -= 1;
            return Ok(());
        }
        // Anything else: residual goal for stepwise evaluation (§7).
        residual.push(goal.clone());
        self.dfs(rest, dbcalls, comps, residual, active, level)?;
        residual.pop();
        Ok(())
    }
}

/// Unfolds variable-free goals (with `t_…` target atoms) into raw branches.
pub fn unfold(
    kb: &KnowledgeBase,
    db: &DatabaseDef,
    goals: &[Term],
    limits: UnfoldLimits,
) -> Result<UnfoldResult> {
    let mut bindings = Bindings::new();
    // Pre-allocate slots for ordinary variables already present in goals.
    let max_var = goals.iter().filter_map(Term::max_var).max();
    if let Some(m) = max_var {
        bindings.alloc(m + 1);
    }
    let mut targets = Vec::new();
    let lifted: Vec<Term> = goals
        .iter()
        .map(|g| lift_targets(g, &mut bindings, &mut targets))
        .collect();
    let mut unfolder = Unfolder {
        kb,
        db,
        limits,
        bindings,
        targets,
        branches: Vec::new(),
        recursive: false,
        truncated: false,
    };
    unfolder.dfs(
        &lifted,
        &mut Vec::new(),
        &mut Vec::new(),
        &mut Vec::new(),
        &mut HashMap::new(),
        0,
    )?;
    Ok(UnfoldResult {
        branches: unfolder.branches,
        recursive: unfolder.recursive,
        truncated: unfolder.truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog::Engine;

    fn setup(src: &str) -> (Engine, DatabaseDef) {
        let mut engine = Engine::new();
        engine.consult(src).unwrap();
        (engine, DatabaseDef::empdep())
    }

    fn unfold_src(engine: &Engine, db: &DatabaseDef, src: &str) -> UnfoldResult {
        let term = prolog::parse_term(src).unwrap();
        let goals = prolog::parser::flatten_conjunction(&term);
        unfold(engine.kb(), db, &goals, UnfoldLimits::default()).unwrap()
    }

    #[test]
    fn collects_direct_relation_goal() {
        let (engine, db) = setup("");
        let out = unfold_src(&engine, &db, "empl(E, t_X, S, D)");
        assert_eq!(out.branches.len(), 1);
        assert_eq!(out.branches[0].dbcalls.len(), 1);
        assert!(!out.recursive);
        // Target recorded and still unbound.
        assert_eq!(out.branches[0].targets.len(), 1);
        assert_eq!(out.branches[0].targets[0].0, "X");
    }

    #[test]
    fn unfolds_view_body() {
        let (engine, db) = setup(crate::views::WORKS_DIR_FOR);
        let out = unfold_src(&engine, &db, "works_dir_for(t_nam, smiley)");
        assert_eq!(out.branches.len(), 1);
        let b = &out.branches[0];
        assert_eq!(b.dbcalls.len(), 3);
        // The constant smiley flowed into the third dbcall.
        assert!(b.dbcalls[2].to_string().contains("smiley"));
    }

    #[test]
    fn equality_goal_unifies() {
        let (engine, db) = setup("");
        let out = unfold_src(&engine, &db, "X = smiley, empl(E, X, S, D)");
        assert_eq!(out.branches.len(), 1);
        assert!(out.branches[0].dbcalls[0].to_string().contains("smiley"));
    }

    #[test]
    fn failed_equality_kills_branch() {
        let (engine, db) = setup("");
        let out = unfold_src(&engine, &db, "smiley = jones, empl(E, t_X, S, D)");
        assert!(out.branches.is_empty());
    }

    #[test]
    fn disjunction_in_goal_splits() {
        let (engine, db) = setup("");
        let out = unfold_src(&engine, &db, "(empl(E, t_X, S, D) ; dept(D2, t_X, M))");
        assert_eq!(out.branches.len(), 2);
    }

    #[test]
    fn shared_target_atom_is_one_variable() {
        let (engine, db) = setup("");
        let out = unfold_src(&engine, &db, "empl(E, t_X, S, D), dept(D, t_X, M)");
        // t_X appears in both dbcalls as the same variable.
        let b = &out.branches[0];
        let d0 = b.dbcalls[0].to_string();
        let d1 = b.dbcalls[1].to_string();
        let var0 = d0.split(", ").nth(1).unwrap().to_owned();
        assert!(d1.contains(&var0));
    }

    #[test]
    fn recursion_depth_limit_respected() {
        let (engine, db) = setup(crate::views::WORKS_FOR);
        let term = prolog::parse_term("works_for(t_P, smiley)").unwrap();
        let goals = prolog::parser::flatten_conjunction(&term);
        let out = unfold(
            engine.kb(),
            &db,
            &goals,
            UnfoldLimits {
                max_recursion_depth: 2,
                max_branches: 100,
            },
        )
        .unwrap();
        assert!(out.recursive);
        assert!(out.truncated);
        assert_eq!(out.branches.len(), 2);
        assert_eq!(out.branches[0].recursion_level, 0);
        assert_eq!(out.branches[1].recursion_level, 1);
    }

    #[test]
    fn branch_cap_truncates() {
        let (engine, db) = setup(
            "p(X) :- empl(_, X, _, _).
             p(X) :- dept(_, X, _).",
        );
        let term = prolog::parse_term("p(t_A), p(t_B), p(t_C)").unwrap();
        let goals = prolog::parser::flatten_conjunction(&term);
        let out = unfold(
            engine.kb(),
            &db,
            &goals,
            UnfoldLimits {
                max_recursion_depth: 4,
                max_branches: 5,
            },
        )
        .unwrap();
        assert!(out.truncated);
        assert_eq!(out.branches.len(), 5);
    }

    #[test]
    fn cut_ignored_true_skipped() {
        let (engine, db) = setup("q(X) :- empl(_, X, _, _), !, true.");
        let out = unfold_src(&engine, &db, "q(t_X)");
        assert_eq!(out.branches.len(), 1);
        assert_eq!(out.branches[0].dbcalls.len(), 1);
    }

    #[test]
    fn arity_mismatch_is_not_a_relation() {
        let (engine, db) = setup("");
        // empl/2 is not the 4-ary base relation → residual.
        let out = unfold_src(&engine, &db, "empl(t_X, smiley)");
        assert_eq!(out.branches[0].dbcalls.len(), 0);
        assert_eq!(out.branches[0].residual.len(), 1);
    }
}

#[cfg(test)]
mod fact_skipping_tests {
    use super::*;
    use prolog::Engine;

    /// Ground facts in the knowledge base (user knowledge or cached query
    /// answers) are extensional: the unfolder must not compile them into
    /// database calls, and a purely extensional predicate is residue.
    #[test]
    fn pure_fact_predicate_is_residual() {
        let mut engine = Engine::new();
        engine
            .consult("specialist(jones, guns). specialist(miller, driving).")
            .unwrap();
        let db = DatabaseDef::empdep();
        let term = prolog::parse_term("empl(E, t_X, S, D), specialist(t_X, driving)").unwrap();
        let goals = prolog::parser::flatten_conjunction(&term);
        let out = unfold(engine.kb(), &db, &goals, UnfoldLimits::default()).unwrap();
        assert_eq!(out.branches.len(), 1);
        assert_eq!(out.branches[0].residual.len(), 1);
    }

    /// Cached ground answers alongside a view definition do not multiply
    /// or corrupt the unfolding (the post-caching re-query scenario).
    #[test]
    fn cached_facts_beside_view_are_ignored() {
        let mut engine = Engine::new();
        engine
            .consult(
                "works_dir_for(X, Y) :- empl(_, X, _, D), dept(D, _, M), empl(M, Y, _, _).
                 works_dir_for(jones, smiley).
                 works_dir_for(miller, smiley).",
            )
            .unwrap();
        let db = DatabaseDef::empdep();
        let term = prolog::parse_term("works_dir_for(t_X, smiley)").unwrap();
        let goals = prolog::parser::flatten_conjunction(&term);
        let out = unfold(engine.kb(), &db, &goals, UnfoldLimits::default()).unwrap();
        assert_eq!(out.branches.len(), 1, "only the rule clause unfolds");
        assert_eq!(out.branches[0].dbcalls.len(), 3);
    }

    /// Non-ground facts are schemas, not data: they still unfold.
    #[test]
    fn non_ground_fact_unfolds() {
        let mut engine = Engine::new();
        engine.consult("anyone(X).").unwrap();
        let db = DatabaseDef::empdep();
        let term = prolog::parse_term("empl(E, t_X, S, D), anyone(t_X)").unwrap();
        let goals = prolog::parser::flatten_conjunction(&term);
        let out = unfold(engine.kb(), &db, &goals, UnfoldLimits::default()).unwrap();
        assert_eq!(out.branches.len(), 1);
        assert!(out.branches[0].residual.is_empty());
    }
}

//! The paper's example view definitions, as reusable Prolog source.

/// Example 3-3: "X works directly for Y".
///
/// ```text
/// works_dir_for(X, Y) :- empl(_, X, D), dept(D, _, M), empl(M, Y, _, _).
/// ```
/// (The paper's first subgoal elides `sal`; the consistent 4-ary form is
/// used throughout its own later examples, so it is used here too.)
pub const WORKS_DIR_FOR: &str = "
    works_dir_for(X, Y) :-
        empl(_, X, _, D),
        dept(D, _, M),
        empl(M, Y, _, _).
";

/// Example 4-1: two employees work for the same manager.
pub const SAME_MANAGER: &str = "
    works_dir_for(X, Y) :-
        empl(_, X, _, D),
        dept(D, _, M),
        empl(M, Y, _, _).
    same_manager(X, Y) :-
        works_dir_for(X, M),
        works_dir_for(Y, M),
        neq(X, Y).
";

/// Example 7-1: transitive closure, top-down ("Low works for High at any
/// level").
pub const WORKS_FOR: &str = "
    works_dir_for(X, Y) :-
        empl(_, X, _, D),
        dept(D, _, M),
        empl(M, Y, _, _).
    works_for(Low, High) :-
        works_dir_for(Low, High).
    works_for(Low, High) :-
        works_dir_for(Low, Medium),
        works_for(Medium, High).
";

/// Example 7-1's bottom-up variant: "A better solution would … generate
/// solutions bottom-up rather than top-down."
pub const WORKS_FOR_BOTTOM_UP: &str = "
    works_dir_for(X, Y) :-
        empl(_, X, _, D),
        dept(D, _, M),
        empl(M, Y, _, _).
    works_for(Low, High) :-
        works_dir_for(Low, High).
    works_for(Low, High) :-
        works_dir_for(Medium, High),
        works_for(Low, Medium).
";

/// §7's negation example: "manager(X, Y) :- empl(X,_,_,D), dept(D,_,Y)".
pub const MANAGER: &str = "
    manager(X, Y) :- empl(X, _, _, D), dept(D, _, Y).
";

#[cfg(test)]
mod tests {
    #[test]
    fn all_views_parse() {
        for src in [
            super::WORKS_DIR_FOR,
            super::SAME_MANAGER,
            super::WORKS_FOR,
            super::WORKS_FOR_BOTTOM_UP,
            super::MANAGER,
        ] {
            prolog::parse_program(src).unwrap();
        }
    }
}

//! PROLOG → DBCL translation (§4 of the paper): the `metaevaluate`
//! predicate.
//!
//! "The function of metaevaluate is to delay the execution of
//! database-related clauses in PROLOG, and to collect the related database
//! calls for set-oriented processing. … the most important function of
//! metaevaluate is the simulation of PROLOG's deduction procedure in order
//! to translate the view."
//!
//! Given a knowledge base of view definitions and the database schema,
//! [`metaevaluate`] unfolds a (variable-free) goal list into one or more
//! conjunctive DBCL queries:
//!
//! * base-relation goals are **collected**, not executed;
//! * comparison goals are collected into `Relcomparisons` ("moved to the
//!   end of the predicate by goal reordering \[Warren 1981\]");
//! * other predicates defined in the knowledge base are **unfolded**
//!   through their clauses — several clauses yield several conjunctive
//!   branches (a disjunction);
//! * recursive views yield a *sequence* of DBCL statements, one per
//!   unfolding depth (Example 7-1's growing query chain);
//! * predicates known to neither the database nor the knowledge base are
//!   returned as **residue** for the coupling layer's stepwise evaluation
//!   (§7).
//!
//! ```
//! use metaeval::{MetaEvaluator, views};
//! use dbcl::DatabaseDef;
//! use prolog::Engine;
//!
//! let mut engine = Engine::new();
//! engine.consult(views::WORKS_DIR_FOR).unwrap();
//! let db = DatabaseDef::empdep();
//! let meta = MetaEvaluator::new(engine.kb(), &db);
//! let out = meta.metaevaluate("works_dir_for(t_nam, smiley)", "works_dir_for").unwrap();
//! assert_eq!(out.branches.len(), 1);
//! assert_eq!(out.branches[0].query.rows.len(), 3);
//! ```

pub mod rename;
pub mod unfold;
pub mod views;

use dbcl::{DatabaseDef, DbclQuery};
use prolog::{KnowledgeBase, Term};

pub use unfold::UnfoldLimits;

/// Errors raised during metaevaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaError(pub String);

impl std::fmt::Display for MetaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "metaevaluation error: {}", self.0)
    }
}

impl std::error::Error for MetaError {}

impl From<prolog::PrologError> for MetaError {
    fn from(e: prolog::PrologError) -> Self {
        MetaError(e.to_string())
    }
}

impl From<dbcl::DbclError> for MetaError {
    fn from(e: dbcl::DbclError) -> Self {
        MetaError(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, MetaError>;

/// One conjunctive branch of the metaevaluated goal.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaBranch {
    /// The collected set-oriented database call.
    pub query: DbclQuery,
    /// Goals the database cannot evaluate (general Prolog predicates);
    /// empty for pure database queries. Symbols shared with `query` appear
    /// in their `t_`/`v_` spelling.
    pub residual: Vec<Term>,
    /// How many times a recursive clause was applied along this branch
    /// (0 for non-recursive queries; Example 7-1's step number).
    pub recursion_level: usize,
}

impl MetaBranch {
    /// The `dbcall/…` list shown in the Appendix transcript:
    /// `[dbcall(empl, v_eno1, t_nam, v_sal1, v_dno1), …]`.
    pub fn dbcall_terms(&self) -> Vec<Term> {
        self.query
            .rows
            .iter()
            .map(|row| {
                let mut args = vec![Term::Atom(row.relation)];
                for entry in &row.entries {
                    if !matches!(entry, dbcl::Entry::Star) {
                        args.push(entry.to_term());
                    }
                }
                let (head, rest) = args.split_first().expect("relation name present");
                let Term::Atom(rel) = head else {
                    unreachable!("first arg is the relation")
                };
                Term::Struct(prolog::Atom::new("dbcall"), {
                    let mut v = vec![Term::Atom(*rel)];
                    v.extend(rest.iter().cloned());
                    v
                })
            })
            .collect()
    }
}

/// The full result of metaevaluating a goal list.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaOutcome {
    /// Conjunctive branches (one per clause combination; a recursive view
    /// produces one branch per unfolding depth — "a sequence of DBCL
    /// statements is generated").
    pub branches: Vec<MetaBranch>,
    /// Whether a recursive predicate was encountered.
    pub recursive: bool,
    /// Whether some branches were cut off by the depth limit (always true
    /// for genuinely recursive views — the sequence is infinite).
    pub truncated: bool,
}

/// The metaevaluator: a knowledge base of views plus the database schema.
pub struct MetaEvaluator<'a> {
    kb: &'a KnowledgeBase,
    db: &'a DatabaseDef,
    limits: UnfoldLimits,
}

impl<'a> MetaEvaluator<'a> {
    pub fn new(kb: &'a KnowledgeBase, db: &'a DatabaseDef) -> Self {
        MetaEvaluator {
            kb,
            db,
            limits: UnfoldLimits::default(),
        }
    }

    pub fn with_limits(kb: &'a KnowledgeBase, db: &'a DatabaseDef, limits: UnfoldLimits) -> Self {
        MetaEvaluator { kb, db, limits }
    }

    pub fn limits(&self) -> UnfoldLimits {
        self.limits
    }

    /// Metaevaluates a goal list given as source text in the paper's
    /// variable-free convention: atoms starting `t_` are target variables,
    /// other atoms are constants. `view_name` names the resulting query.
    pub fn metaevaluate(&self, goals_src: &str, view_name: &str) -> Result<MetaOutcome> {
        let term = prolog::parse_term(goals_src)?;
        let goals = prolog::parser::flatten_conjunction(&term);
        self.metaevaluate_terms(&goals, view_name)
    }

    /// Metaevaluates already-parsed variable-free goal terms.
    pub fn metaevaluate_terms(&self, goals: &[Term], view_name: &str) -> Result<MetaOutcome> {
        let unfolded = unfold::unfold(self.kb, self.db, goals, self.limits)?;
        let mut branches = Vec::with_capacity(unfolded.branches.len());
        for branch in &unfolded.branches {
            branches.push(rename::branch_to_dbcl(branch, self.db, view_name)?);
        }
        Ok(MetaOutcome {
            branches,
            recursive: unfolded.recursive,
            truncated: unfolded.truncated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcl::Entry;
    use prolog::Engine;

    fn fixture(source: &str) -> (Engine, DatabaseDef) {
        let mut engine = Engine::new();
        engine.consult(source).unwrap();
        (engine, DatabaseDef::empdep())
    }

    /// Appendix: works_dir_for(t_nam, smiley) → three dbcalls.
    #[test]
    fn appendix_works_dir_for() {
        let (engine, db) = fixture(views::WORKS_DIR_FOR);
        let meta = MetaEvaluator::new(engine.kb(), &db);
        let out = meta
            .metaevaluate("works_dir_for(t_nam, smiley)", "works_dir_for")
            .unwrap();
        assert_eq!(out.branches.len(), 1);
        assert!(!out.recursive);
        let q = &out.branches[0].query;
        q.validate(&db).unwrap();
        assert_eq!(q.rows.len(), 3);
        assert_eq!(q.rows[0].relation.as_str(), "empl");
        assert_eq!(q.rows[1].relation.as_str(), "dept");
        assert_eq!(q.rows[2].relation.as_str(), "empl");
        // smiley pinned in row 3's nam column.
        assert_eq!(q.rows[2].entries[1], Entry::sym_const("smiley"));
        // t_nam in row 1's nam column and in the target list.
        assert_eq!(q.rows[0].entries[1], Entry::target("nam"));
        assert_eq!(q.target[1], Entry::target("nam"));
        // dbcall list shape of the transcript.
        let dbcalls = out.branches[0].dbcall_terms();
        assert_eq!(dbcalls.len(), 3);
        assert!(dbcalls[0].to_string().starts_with("dbcall(empl, "));
        assert!(dbcalls[1].to_string().starts_with("dbcall(dept, "));
    }

    /// Example 3-3: view + extra relation goal + comparison.
    #[test]
    fn example_3_3_query() {
        let (engine, db) = fixture(views::WORKS_DIR_FOR);
        let meta = MetaEvaluator::new(engine.kb(), &db);
        let out = meta
            .metaevaluate(
                "works_dir_for(t_X, smiley), empl(E, t_X, S, D), less(S, 40000)",
                "works_dir_for",
            )
            .unwrap();
        assert_eq!(out.branches.len(), 1);
        let q = &out.branches[0].query;
        q.validate(&db).unwrap();
        assert_eq!(q.rows.len(), 4);
        assert_eq!(q.comparisons.len(), 1);
        assert_eq!(q.comparisons[0].op, dbcl::CompOp::Less);
    }

    /// Example 4-1: same_manager(t_X, jones) → six rows plus neq.
    #[test]
    fn example_4_1_same_manager() {
        let (engine, db) = fixture(views::SAME_MANAGER);
        let meta = MetaEvaluator::new(engine.kb(), &db);
        let out = meta
            .metaevaluate("same_manager(t_X, jones)", "same_manager")
            .unwrap();
        assert_eq!(out.branches.len(), 1);
        let q = &out.branches[0].query;
        q.validate(&db).unwrap();
        assert_eq!(q.rows.len(), 6, "query:\n{q}");
        assert_eq!(q.comparisons.len(), 1);
        assert_eq!(q.comparisons[0].op, dbcl::CompOp::Neq);
        // The shared manager-name variable joins rows 3 and 6.
        assert_eq!(q.rows[2].entries[1], q.rows[5].entries[1]);
    }

    /// Uppercase variables in the goal text behave like v_ variables.
    #[test]
    fn plain_variables_allowed_in_goals() {
        let (engine, db) = fixture(views::WORKS_DIR_FOR);
        let meta = MetaEvaluator::new(engine.kb(), &db);
        let out = meta
            .metaevaluate("empl(E, t_X, S, D), less(S, 40000)", "q")
            .unwrap();
        let q = &out.branches[0].query;
        assert_eq!(q.rows.len(), 1);
        assert_eq!(q.comparisons.len(), 1);
    }

    /// A view with two clauses produces two conjunctive branches.
    #[test]
    fn disjunctive_view_two_branches() {
        let (engine, db) = fixture(
            "cheap_or_hq(X) :- empl(_, X, S, _), less(S, 20000).
             cheap_or_hq(X) :- empl(_, X, _, D), dept(D, hq, _).",
        );
        let meta = MetaEvaluator::new(engine.kb(), &db);
        let out = meta
            .metaevaluate("cheap_or_hq(t_X)", "cheap_or_hq")
            .unwrap();
        assert_eq!(out.branches.len(), 2);
        assert_eq!(out.branches[0].query.rows.len(), 1);
        assert_eq!(out.branches[0].query.comparisons.len(), 1);
        assert_eq!(out.branches[1].query.rows.len(), 2);
    }

    /// Example 7-1: works_for unfolds into the naive query sequence —
    /// 3, 6, 9, … rows.
    #[test]
    fn recursive_view_generates_sequence() {
        let (engine, db) = fixture(views::WORKS_FOR);
        let meta = MetaEvaluator::with_limits(
            engine.kb(),
            &db,
            UnfoldLimits {
                max_recursion_depth: 3,
                ..UnfoldLimits::default()
            },
        );
        let out = meta
            .metaevaluate("works_for(t_People, smiley)", "works_for")
            .unwrap();
        assert!(out.recursive);
        assert!(out.truncated);
        assert_eq!(out.branches.len(), 3);
        let sizes: Vec<usize> = out.branches.iter().map(|b| b.query.rows.len()).collect();
        assert_eq!(sizes, [3, 6, 9], "each step adds one works_dir_for body");
        let levels: Vec<usize> = out.branches.iter().map(|b| b.recursion_level).collect();
        assert_eq!(levels, [0, 1, 2]);
        for b in &out.branches {
            b.query.validate(&db).unwrap();
        }
    }

    /// Example 4-1's partner rule: specialist/2 is neither a relation nor
    /// a view → residual goal for stepwise evaluation.
    #[test]
    fn unknown_predicate_becomes_residue() {
        let (engine, db) = fixture(views::SAME_MANAGER);
        let meta = MetaEvaluator::new(engine.kb(), &db);
        let out = meta
            .metaevaluate(
                "same_manager(t_X, jones), specialist(t_X, driving)",
                "partner",
            )
            .unwrap();
        assert_eq!(out.branches.len(), 1);
        let b = &out.branches[0];
        assert_eq!(b.query.rows.len(), 6);
        assert_eq!(b.residual.len(), 1);
        assert_eq!(b.residual[0].to_string(), "specialist(t_X, driving)");
    }

    #[test]
    fn database_independent_comparison_becomes_residue() {
        let (engine, db) = fixture(views::WORKS_DIR_FOR);
        let meta = MetaEvaluator::new(engine.kb(), &db);
        // L never touches a database relation: the comparison is internal
        // computation and must be evaluated stepwise, not shipped as SQL.
        let out = meta
            .metaevaluate("empl(E, t_X, S, D), name_length(t_X, L), less(L, 6)", "q")
            .unwrap();
        let b = &out.branches[0];
        assert_eq!(b.query.comparisons.len(), 0);
        assert_eq!(b.residual.len(), 2);
        assert!(
            b.residual[1].to_string().starts_with("less("),
            "{:?}",
            b.residual
        );
    }
}

//! The six DBCL→SQL mapping rules of §5.

use crate::ast::{SqlColumn, SqlCond, SqlOp, SqlQuery, SqlTerm};
use crate::{Result, SqlGenError};
use dbcl::{DatabaseDef, DbclQuery, Entry, Operand, Symbol};

/// Options controlling variable naming.
#[derive(Clone, Copy, Debug)]
pub struct MappingOptions {
    /// Index of the first range variable (`v<first>`); the paper's Appendix
    /// transcript happens to start at `v12` because its prototype used a
    /// global counter.
    pub first_var_index: usize,
    /// Emit `SELECT DISTINCT` (the paper's 1984 SQL had set semantics by
    /// convention; modern engines need this to agree with the Prolog side).
    pub distinct: bool,
}

impl Default for MappingOptions {
    fn default() -> Self {
        MappingOptions {
            first_var_index: 1,
            distinct: false,
        }
    }
}

/// Translates a conjunctive DBCL query into one SQL query.
pub fn translate(query: &DbclQuery, db: &DatabaseDef, opts: MappingOptions) -> Result<SqlQuery> {
    query.validate(db)?;
    if query.rows.is_empty() {
        return Err(SqlGenError(
            "cannot translate a query with no relation references".into(),
        ));
    }
    let var_name = |row: usize| format!("v{}", opts.first_var_index + row);
    // Column reference for a symbol: first row occurrence (rule 2/5).
    let col_ref = |sym: Symbol| -> Result<SqlColumn> {
        let (row, col) = query
            .first_row_occurrence(sym)
            .ok_or_else(|| SqlGenError(format!("symbol {sym} not anchored in any row")))?;
        Ok(SqlColumn {
            var: var_name(row),
            attr: query.attributes[col].to_string(),
        })
    };

    // Rule 1: FROM variables.
    let from: Vec<(String, String)> = query
        .rows
        .iter()
        .enumerate()
        .map(|(i, row)| (row.relation.to_string(), var_name(i)))
        .collect();

    // Rule 2: SELECT items from target-list symbols (rule 6 drops the rest).
    let mut select = Vec::new();
    for entry in &query.target {
        match entry {
            Entry::Sym(s) => select.push(col_ref(*s)?),
            Entry::Star => {}
            Entry::Const(c) => {
                return Err(SqlGenError(format!(
                    "constant {c} in target list has no SQL-84 equivalent"
                )))
            }
        }
    }
    if select.is_empty() {
        return Err(SqlGenError("query has an empty target list".into()));
    }

    let mut conds = Vec::new();
    // Rule 3: constants in rows → equality restrictions.
    for (i, row) in query.rows.iter().enumerate() {
        for (col, entry) in row.entries.iter().enumerate() {
            if let Entry::Const(v) = entry {
                conds.push(SqlCond {
                    op: SqlOp::Equal,
                    lhs: SqlTerm::Col(SqlColumn {
                        var: var_name(i),
                        attr: query.attributes[col].to_string(),
                    }),
                    rhs: SqlTerm::Const(*v),
                });
            }
        }
    }
    // Rule 4: repeated symbols → equijoins between consecutive occurrences.
    for sym in query.symbols() {
        let occurrences: Vec<(usize, usize)> = query
            .rows
            .iter()
            .enumerate()
            .flat_map(|(i, row)| {
                row.entries
                    .iter()
                    .enumerate()
                    .filter(move |(_, e)| e.as_symbol() == Some(sym))
                    .map(move |(col, _)| (i, col))
            })
            .collect();
        for pair in occurrences.windows(2) {
            let (r1, c1) = pair[0];
            let (r2, c2) = pair[1];
            conds.push(SqlCond {
                op: SqlOp::Equal,
                lhs: SqlTerm::Col(SqlColumn {
                    var: var_name(r1),
                    attr: query.attributes[c1].to_string(),
                }),
                rhs: SqlTerm::Col(SqlColumn {
                    var: var_name(r2),
                    attr: query.attributes[c2].to_string(),
                }),
            });
        }
    }
    // Rule 5: relational comparisons, located by first occurrence.
    for comparison in &query.comparisons {
        let term_of = |operand: &Operand| -> Result<SqlTerm> {
            Ok(match operand {
                Operand::Sym(s) => SqlTerm::Col(col_ref(*s)?),
                Operand::Const(v) => SqlTerm::Const(*v),
            })
        };
        conds.push(SqlCond {
            op: SqlOp::from_comp(comparison.op),
            lhs: term_of(&comparison.lhs)?,
            rhs: term_of(&comparison.rhs)?,
        });
    }

    Ok(SqlQuery {
        select,
        from,
        conds,
        not_in: None,
    })
}

/// Translates with the distinct flag folded into the SQL text.
pub fn to_sql_text(query: &DbclQuery, db: &DatabaseDef, opts: MappingOptions) -> Result<String> {
    let sql = translate(query, db, opts)?;
    let text = sql.to_sql();
    if opts.distinct {
        Ok(text.replacen("SELECT ", "SELECT DISTINCT ", 1))
    } else {
        Ok(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcl::{ConstraintSet, DatabaseDef};

    fn translate_default(q: &DbclQuery) -> SqlQuery {
        translate(q, &DatabaseDef::empdep(), MappingOptions::default()).unwrap()
    }

    #[test]
    fn example_5_1_shape() {
        // Direct translation of same_manager(t_X, jones): 6 FROM variables,
        // 5 join terms, jones restriction, and the neq comparison.
        let q = DbclQuery::example_4_1();
        let sql = translate_default(&q);
        assert_eq!(sql.from.len(), 6);
        assert_eq!(sql.join_term_count(), 5);
        assert_eq!(
            sql.select,
            vec![SqlColumn {
                var: "v1".into(),
                attr: "nam".into()
            }]
        );
        let text = sql.to_sql();
        assert!(text.contains("(v1.dno = v2.dno)"));
        assert!(
            text.contains("(v2.mgr = v3.eno)"),
            "cross-column equijoin: {text}"
        );
        assert!(text.contains("(v4.dno = v5.dno)"));
        assert!(text.contains("(v5.mgr = v6.eno)"));
        assert!(text.contains("(v3.nam = v6.nam)"));
        assert!(text.contains("(v4.nam = 'jones')"));
        assert!(text.contains("(v1.nam <> 'jones')"));
    }

    #[test]
    fn appendix_works_dir_for_smiley() {
        // Appendix: works_dir_for(t_nam, smiley), vars starting at v12.
        let q = DbclQuery::parse(
            "dbcl([empdep, eno, nam, sal, dno, fct, mgr],
                  [works_dir_for, *, t_nam, *, *, *, *],
                  [[empl, v_eno, t_nam, v_sal1, v_dno, *, *],
                   [dept, *, *, *, v_dno, v_fct, v_eno1],
                   [empl, v_eno1, smiley, v_sal2, v_dno2, *, *]],
                  [])",
        )
        .unwrap();
        let sql = translate(
            &q,
            &DatabaseDef::empdep(),
            MappingOptions {
                first_var_index: 12,
                distinct: false,
            },
        )
        .unwrap();
        let text = sql.to_sql();
        assert!(text.contains("SELECT v12.nam"));
        assert!(text.contains("FROM empl v12, dept v13, empl v14"));
        assert!(text.contains("(v12.dno = v13.dno)"));
        assert!(text.contains("(v14.nam = 'smiley')"));
        // Body-style attribute naming: the dept.mgr/empl.eno equijoin.
        assert!(text.contains("(v13.mgr = v14.eno)"));
    }

    #[test]
    fn example_3_3_includes_less_comparison() {
        let q = DbclQuery::example_3_3();
        let sql = translate_default(&q);
        let text = sql.to_sql();
        assert!(text.contains("(v4.sal < 40000)"));
        // t_X repeated in rows 1 and 4 → equijoin v1.nam = v4.nam.
        assert!(text.contains("(v1.nam = v4.nam)"));
    }

    #[test]
    fn rule_6_non_repeated_vars_vanish() {
        let q = DbclQuery::parse(
            "dbcl([empdep, eno, nam, sal, dno, fct, mgr],
                  [who, *, t_X, *, *, *, *],
                  [[empl, v_E, t_X, v_S, v_D, *, *]],
                  [])",
        )
        .unwrap();
        let sql = translate_default(&q);
        assert!(sql.conds.is_empty());
        assert_eq!(sql.to_sql(), "SELECT v1.nam\nFROM empl v1");
    }

    #[test]
    fn empty_rows_rejected() {
        let q = DbclQuery::parse(
            "dbcl([empdep, eno, nam, sal, dno, fct, mgr],
                  [who, *, t_X, *, *, *, *], [], [])",
        )
        .unwrap();
        // Validation fails first: t_X is unanchored.
        assert!(translate_default_checked(&q).is_err());
    }

    fn translate_default_checked(q: &DbclQuery) -> Result<SqlQuery> {
        translate(q, &DatabaseDef::empdep(), MappingOptions::default())
    }

    #[test]
    fn distinct_option_prefixes_select() {
        let q = DbclQuery::example_3_3();
        let text = to_sql_text(
            &q,
            &DatabaseDef::empdep(),
            MappingOptions {
                first_var_index: 1,
                distinct: true,
            },
        )
        .unwrap();
        assert!(text.starts_with("SELECT DISTINCT "));
    }

    #[test]
    fn generated_sql_is_valid_for_constraints_fixture() {
        // Sanity: every paper fixture translates without error.
        let _ = ConstraintSet::empdep();
        for q in [DbclQuery::example_3_3(), DbclQuery::example_4_1()] {
            translate_default_checked(&q).unwrap();
        }
    }
}

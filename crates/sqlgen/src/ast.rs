//! The SQL syntax tree (the Appendix's `select/from/where` term) and its
//! rendering to SQL text.

use dbcl::Value;
use prolog::Term;
use std::fmt;

/// `var.attr` — a qualified column.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SqlColumn {
    pub var: String,
    pub attr: String,
}

impl fmt::Display for SqlColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.var, self.attr)
    }
}

/// A WHERE-clause operand.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SqlTerm {
    Col(SqlColumn),
    Const(Value),
}

impl fmt::Display for SqlTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlTerm::Col(c) => write!(f, "{c}"),
            SqlTerm::Const(Value::Int(i)) => write!(f, "{i}"),
            SqlTerm::Const(Value::Sym(s)) => write!(f, "'{s}'"),
        }
    }
}

/// SQL comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SqlOp {
    Equal,
    NotEqual,
    Less,
    Greater,
    Leq,
    Geq,
}

impl SqlOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            SqlOp::Equal => "=",
            SqlOp::NotEqual => "<>",
            SqlOp::Less => "<",
            SqlOp::Greater => ">",
            SqlOp::Leq => "<=",
            SqlOp::Geq => ">=",
        }
    }

    /// The functor used in the Appendix syntax tree (`equal`, `notequal`, …).
    pub fn tree_name(&self) -> &'static str {
        match self {
            SqlOp::Equal => "equal",
            SqlOp::NotEqual => "notequal",
            SqlOp::Less => "less",
            SqlOp::Greater => "greater",
            SqlOp::Leq => "leq",
            SqlOp::Geq => "geq",
        }
    }

    pub fn from_comp(op: dbcl::CompOp) -> SqlOp {
        match op {
            dbcl::CompOp::Less => SqlOp::Less,
            dbcl::CompOp::Greater => SqlOp::Greater,
            dbcl::CompOp::Leq => SqlOp::Leq,
            dbcl::CompOp::Geq => SqlOp::Geq,
            dbcl::CompOp::Eq => SqlOp::Equal,
            dbcl::CompOp::Neq => SqlOp::NotEqual,
        }
    }
}

/// One WHERE conjunct.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SqlCond {
    pub op: SqlOp,
    pub lhs: SqlTerm,
    pub rhs: SqlTerm,
}

impl fmt::Display for SqlCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} {} {})", self.lhs, self.op.symbol(), self.rhs)
    }
}

/// A complete generated query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SqlQuery {
    pub select: Vec<SqlColumn>,
    /// `(relation, range variable)` in FROM order.
    pub from: Vec<(String, String)>,
    pub conds: Vec<SqlCond>,
    /// Optional NOT IN clause: `(column, subquery)` (§7 negation).
    pub not_in: Option<(SqlColumn, Box<SqlQuery>)>,
}

impl SqlQuery {
    /// Number of equijoin/inequality terms joining two range variables —
    /// the quantity the paper's Example 6-2 counts ("four out of five join
    /// operations have been avoided").
    pub fn join_term_count(&self) -> usize {
        self.conds
            .iter()
            .filter(|c| {
                matches!(
                    (&c.lhs, &c.rhs),
                    (SqlTerm::Col(a), SqlTerm::Col(b)) if a.var != b.var
                )
            })
            .count()
    }

    /// Renders the SQL text the relational query system consumes.
    pub fn to_sql(&self) -> String {
        let mut out = String::from("SELECT ");
        for (i, c) in self.select.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&c.to_string());
        }
        out.push_str("\nFROM ");
        for (i, (rel, var)) in self.from.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(rel);
            out.push(' ');
            out.push_str(var);
        }
        let mut conds: Vec<String> = self.conds.iter().map(|c| c.to_string()).collect();
        if let Some((col, sub)) = &self.not_in {
            conds.push(format!(
                "{col} NOT IN ({})",
                sub.to_sql().replace('\n', " ")
            ));
        }
        if !conds.is_empty() {
            out.push_str("\nWHERE ");
            out.push_str(&conds.join(" AND "));
        }
        out
    }

    /// Builds the Appendix's Prolog syntax tree:
    /// `select([dot(v, a)…], from([(rel, var)…]), where([equal(…)…]))`.
    pub fn to_syntax_tree(&self) -> Term {
        let select_items = self
            .select
            .iter()
            .map(|c| Term::app("dot", vec![Term::atom(&c.var), Term::atom(&c.attr)]))
            .collect();
        let from_items = self
            .from
            .iter()
            .map(|(rel, var)| Term::app(",", vec![Term::atom(rel), Term::atom(var)]))
            .collect();
        let term_of = |t: &SqlTerm| match t {
            SqlTerm::Col(c) => Term::app("dot", vec![Term::atom(&c.var), Term::atom(&c.attr)]),
            SqlTerm::Const(Value::Int(i)) => Term::Int(*i),
            SqlTerm::Const(Value::Sym(s)) => Term::Atom(*s),
        };
        let where_items = self
            .conds
            .iter()
            .map(|c| Term::app(c.op.tree_name(), vec![term_of(&c.lhs), term_of(&c.rhs)]))
            .collect();
        Term::app(
            "select",
            vec![
                Term::list(select_items),
                Term::app("from", vec![Term::list(from_items)]),
                Term::app("where", vec![Term::list(where_items)]),
            ],
        )
    }
}

impl fmt::Display for SqlQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sql())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SqlQuery {
        SqlQuery {
            select: vec![SqlColumn {
                var: "v1".into(),
                attr: "nam".into(),
            }],
            from: vec![("empl".into(), "v1".into()), ("empl".into(), "v2".into())],
            conds: vec![
                SqlCond {
                    op: SqlOp::Equal,
                    lhs: SqlTerm::Col(SqlColumn {
                        var: "v1".into(),
                        attr: "dno".into(),
                    }),
                    rhs: SqlTerm::Col(SqlColumn {
                        var: "v2".into(),
                        attr: "dno".into(),
                    }),
                },
                SqlCond {
                    op: SqlOp::Equal,
                    lhs: SqlTerm::Col(SqlColumn {
                        var: "v2".into(),
                        attr: "nam".into(),
                    }),
                    rhs: SqlTerm::Const(Value::sym("jones")),
                },
                SqlCond {
                    op: SqlOp::NotEqual,
                    lhs: SqlTerm::Col(SqlColumn {
                        var: "v1".into(),
                        attr: "nam".into(),
                    }),
                    rhs: SqlTerm::Const(Value::sym("jones")),
                },
            ],
            not_in: None,
        }
    }

    #[test]
    fn renders_example_6_2_final_sql() {
        // The paper's final simplified same_manager query.
        let sql = sample().to_sql();
        assert_eq!(
            sql,
            "SELECT v1.nam\nFROM empl v1, empl v2\nWHERE (v1.dno = v2.dno) AND (v2.nam = 'jones') AND (v1.nam <> 'jones')"
        );
    }

    #[test]
    fn join_term_count_excludes_restrictions() {
        // One var-var condition, two var-const.
        assert_eq!(sample().join_term_count(), 1);
    }

    #[test]
    fn syntax_tree_shape() {
        let tree = sample().to_syntax_tree();
        let text = tree.to_string();
        assert!(text.starts_with("select("));
        assert!(text.contains("from("));
        assert!(text.contains("where("));
        assert!(text.contains("dot(v1, dno)"));
        assert!(text.contains("equal("));
    }

    #[test]
    fn not_in_renders_subquery() {
        let mut q = sample();
        q.conds.clear();
        q.not_in = Some((
            SqlColumn {
                var: "v1".into(),
                attr: "eno".into(),
            },
            Box::new(SqlQuery {
                select: vec![SqlColumn {
                    var: "v9".into(),
                    attr: "mgr".into(),
                }],
                from: vec![("dept".into(), "v9".into())],
                conds: vec![],
                not_in: None,
            }),
        ));
        let sql = q.to_sql();
        assert!(sql.contains("v1.eno NOT IN (SELECT v9.mgr FROM dept v9)"));
    }

    #[test]
    fn int_constants_unquoted() {
        let c = SqlCond {
            op: SqlOp::Less,
            lhs: SqlTerm::Col(SqlColumn {
                var: "v1".into(),
                attr: "sal".into(),
            }),
            rhs: SqlTerm::Const(Value::Int(40000)),
        };
        assert_eq!(c.to_string(), "(v1.sal < 40000)");
    }
}

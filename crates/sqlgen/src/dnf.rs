//! §7 disjunction: "The simplest way to handle disjunction is converting
//! the DBCL predicate into disjunctive normal form, and generating a query
//! for each of these conjunctions" — the SDD-1 strategy. The caller UNIONs
//! the per-branch results.

use crate::ast::SqlQuery;
use crate::mapping::{translate, MappingOptions};
use crate::{Result, SqlGenError};
use dbcl::{DatabaseDef, DbclStatement};

/// Translates a general DBCL statement into one SQL query per DNF branch.
///
/// Only purely positive branches translate here; branches containing
/// negation or embedded predicates are reported as errors — they take the
/// [`crate::negation`] or the coupling layer's stepwise route instead.
pub fn generate_dnf(
    stmt: &DbclStatement,
    db: &DatabaseDef,
    opts: MappingOptions,
) -> Result<Vec<SqlQuery>> {
    stmt.dnf_branches()
        .iter()
        .map(|branch| match branch {
            DbclStatement::Query(q) => translate(q, db, opts),
            other => Err(SqlGenError(format!(
                "branch is not a positive conjunctive query: {other}"
            ))),
        })
        .collect()
}

/// Renders the branches as one UNION query (how the final result is
/// assembled; "the final result would be the union of all these query
/// results", §7).
pub fn generate_dnf_union_sql(
    stmt: &DbclStatement,
    db: &DatabaseDef,
    opts: MappingOptions,
) -> Result<String> {
    let queries = generate_dnf(stmt, db, opts)?;
    if queries.is_empty() {
        return Err(SqlGenError("statement has no DNF branches".into()));
    }
    Ok(queries
        .iter()
        .map(|q| q.to_sql().replace('\n', " "))
        .collect::<Vec<_>>()
        .join("\nUNION\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcl::DbclQuery;

    fn disjunctive_fixture() -> DbclStatement {
        let low = DbclQuery::parse(
            "dbcl([empdep, eno, nam, sal, dno, fct, mgr],
                  [cheap_or_field, *, t_X, *, *, *, *],
                  [[empl, v_E, t_X, v_S, v_D, *, *]],
                  [[less, v_S, 20000]])",
        )
        .unwrap();
        let field = DbclQuery::parse(
            "dbcl([empdep, eno, nam, sal, dno, fct, mgr],
                  [cheap_or_field, *, t_X, *, *, *, *],
                  [[empl, v_E, t_X, v_S, v_D, *, *],
                   [dept, *, *, *, v_D, field, v_M]],
                  [])",
        )
        .unwrap();
        DbclStatement::Disjunction(vec![DbclStatement::Query(low), DbclStatement::Query(field)])
    }

    #[test]
    fn one_query_per_branch() {
        let queries = generate_dnf(
            &disjunctive_fixture(),
            &DatabaseDef::empdep(),
            MappingOptions::default(),
        )
        .unwrap();
        assert_eq!(queries.len(), 2);
        assert_eq!(queries[0].from.len(), 1);
        assert_eq!(queries[1].from.len(), 2);
    }

    #[test]
    fn union_sql_renders() {
        let sql = generate_dnf_union_sql(
            &disjunctive_fixture(),
            &DatabaseDef::empdep(),
            MappingOptions::default(),
        )
        .unwrap();
        assert_eq!(sql.matches("UNION").count(), 1);
        assert!(sql.contains("(v1.sal < 20000)"));
        assert!(sql.contains("(v2.fct = 'field')"));
    }

    #[test]
    fn negated_branch_rejected_here() {
        let stmt = DbclStatement::Negation(Box::new(disjunctive_fixture()));
        assert!(generate_dnf(&stmt, &DatabaseDef::empdep(), MappingOptions::default()).is_err());
    }
}

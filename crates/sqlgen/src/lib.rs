//! DBCL → SQL translation (§5 of the paper).
//!
//! "The algorithm just has to fill in the information from the DBCL
//! tableau into the `SELECT…FROM…WHERE…` pattern" — six rules, reproduced
//! one-for-one in [`mapping`]:
//!
//! 1. each `Relreferences` row becomes a FROM-clause range variable;
//! 2. target-list entries become SELECT items named by the first row in
//!    which the same entry appears;
//! 3. constants in rows become equality restrictions;
//! 4. repeated `t_`/`v_` symbols become equijoin terms;
//! 5. each `Relcomparisons` row becomes a restriction or join term located
//!    by first occurrence;
//! 6. non-repeated variables simply do not appear.
//!
//! The result is an explicit SQL syntax tree ([`ast::SqlQuery`]) — the
//! Appendix's `select/from/where` term — printed to SQL text for the
//! relational query system. Since only function-free conjunctive queries
//! are translated, "the generated queries do not require nesting"; the §7
//! extensions (disjunctive normal form, `NOT IN` negation) live in
//! [`dnf`] and [`negation`].

pub mod ast;
pub mod dnf;
pub mod mapping;
pub mod negation;

pub use ast::{SqlColumn, SqlCond, SqlOp, SqlQuery, SqlTerm};
pub use dnf::generate_dnf;
pub use mapping::{translate, MappingOptions};
pub use negation::translate_with_negation;

/// Errors raised during SQL generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlGenError(pub String);

impl std::fmt::Display for SqlGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SQL generation error: {}", self.0)
    }
}

impl std::error::Error for SqlGenError {}

impl From<dbcl::DbclError> for SqlGenError {
    fn from(e: dbcl::DbclError) -> Self {
        SqlGenError(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, SqlGenError>;

//! §7 negation: "its evaluation involves first computing the positive
//! result, and then its complement in the appropriate set. Instead of set
//! difference, SQL's nested expressions (NOT IN (…)) can also be used."
//!
//! This module implements the `NOT IN` route for the common shape
//! `positive ∧ ¬negated` where the two conjuncts share exactly one target
//! symbol — e.g. "employees who are managers but do not manage Jones".

use crate::ast::{SqlColumn, SqlQuery};
use crate::mapping::{translate, MappingOptions};
use crate::{Result, SqlGenError};
use dbcl::{DatabaseDef, DbclQuery, Entry, Symbol};

/// The single target symbol of `query`, or an error.
fn sole_target(query: &DbclQuery) -> Result<Symbol> {
    let mut targets = query.target.iter().filter_map(Entry::as_symbol);
    let first = targets
        .next()
        .ok_or_else(|| SqlGenError("query has no target symbol".into()))?;
    if targets.next().is_some() {
        return Err(SqlGenError(
            "NOT IN translation needs exactly one target symbol".into(),
        ));
    }
    Ok(first)
}

/// Translates `positive(t) ∧ ¬negated(t)` into
/// `SELECT … FROM positive WHERE … AND t NOT IN (SELECT t FROM negated …)`.
///
/// Both queries must project exactly one symbol; they join on it.
pub fn translate_with_negation(
    positive: &DbclQuery,
    negated: &DbclQuery,
    db: &DatabaseDef,
    opts: MappingOptions,
) -> Result<SqlQuery> {
    let pos_target = sole_target(positive)?;
    sole_target(negated)?;
    let mut outer = translate(positive, db, opts)?;
    // Name the inner query's variables after the outer ones to keep the
    // generated text unambiguous for the DBMS parser.
    let inner_opts = MappingOptions {
        first_var_index: opts.first_var_index + positive.rows.len(),
        ..opts
    };
    let inner = translate(negated, db, inner_opts)?;
    let (row, col) = positive
        .first_row_occurrence(pos_target)
        .ok_or_else(|| SqlGenError(format!("target {pos_target} not anchored")))?;
    let link = SqlColumn {
        var: format!("v{}", opts.first_var_index + row),
        attr: positive.attributes[col].to_string(),
    };
    outer.not_in = Some((link, Box::new(inner)));
    Ok(outer)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §7's view: `manager(X, Y) :- empl(X, _, _, D), dept(D, _, Y)` —
    /// the "managers" interpretation of `not(manager(jones, M))`:
    /// all managers (from dept) that do not manage jones.
    fn managers_query() -> DbclQuery {
        DbclQuery::parse(
            "dbcl([empdep, eno, nam, sal, dno, fct, mgr],
                  [managers, t_M, *, *, *, *, *],
                  [[empl, t_M, v_N, v_S, v_D, *, *],
                   [dept, *, *, *, v_D2, v_F, t_M]],
                  [])",
        )
        .unwrap()
    }

    fn manages_jones_query() -> DbclQuery {
        DbclQuery::parse(
            "dbcl([empdep, eno, nam, sal, dno, fct, mgr],
                  [manages_jones, t_M, *, *, *, *, *],
                  [[empl, v_E, jones, v_S, v_D, *, *],
                   [dept, *, *, *, v_D, v_F, t_M]],
                  [])",
        )
        .unwrap()
    }

    #[test]
    fn not_in_translation() {
        let sql = translate_with_negation(
            &managers_query(),
            &manages_jones_query(),
            &DatabaseDef::empdep(),
            MappingOptions::default(),
        )
        .unwrap();
        let text = sql.to_sql();
        assert!(text.contains("NOT IN"), "{text}");
        assert!(text.contains("v1.eno NOT IN"), "{text}");
        // Inner query variables renumbered past the outer ones.
        assert!(text.contains("empl v3"), "{text}");
        assert!(text.contains("(v3.nam = 'jones')"), "{text}");
    }

    #[test]
    fn multi_target_rejected() {
        let mut q = managers_query();
        q.target[1] = Entry::target("N");
        // Anchor the second target so validation passes but negation fails.
        q.rows[0].entries[1] = Entry::target("N");
        let err = translate_with_negation(
            &q,
            &manages_jones_query(),
            &DatabaseDef::empdep(),
            MappingOptions::default(),
        );
        assert!(err.is_err());
    }
}

//! The end-to-end facade of the optimizing Prolog front-end.
//!
//! [`Session`] wires the whole Figure-1 architecture together:
//!
//! ```text
//!   PROLOG (tuple-at-a-time, recursive views)
//!      │ metaevaluate: collect database requests
//!      ▼
//!   DBCL (set-oriented, base relations, Prolog syntax)
//!      │ local optimize: §6 syntactic + semantic simplification
//!      │ global optimize: cache / recursion / batching
//!      ▼
//!   SQL → relational query system
//! ```
//!
//! ```
//! use pfe_core::Session;
//!
//! let mut session = Session::empdep();
//! session.consult(pfe_core::views::WORKS_DIR_FOR).unwrap();
//! session.load_empl(&[(1, "control", 80000, 10), (2, "smiley", 60000, 10),
//!                     (3, "jones", 30000, 20)]).unwrap();
//! session.load_dept(&[(10, "hq", 1), (20, "field", 2)]).unwrap();
//! session.check_integrity().unwrap();
//!
//! let run = session.query("works_dir_for(t_X, smiley)", "q").unwrap();
//! assert_eq!(run.answers.len(), 1); // jones
//! ```

pub use coupling::{Answer, BranchTrace, Coupler, CouplerConfig, CouplingError, QueryRun, Result};
pub use dbcl::{ConstraintSet, DatabaseDef, DbclQuery};
pub use metaeval::views;
pub use rqs::Datum;

use std::fmt::Write as _;

/// A coupled Prolog/RQS session: the library's main entry point.
///
/// Thin, documented wrapper over [`coupling::Coupler`] adding loading
/// conveniences and human-readable pipeline reports (the Appendix
/// transcript format).
pub struct Session {
    coupler: Coupler,
}

impl Session {
    /// A session over the paper's `empdep` database and Example 3-2
    /// constraints.
    pub fn empdep() -> Session {
        Session {
            coupler: Coupler::empdep(),
        }
    }

    /// Like [`Session::empdep`], but the external DBMS runs on the paged
    /// storage engine (slotted heap pages behind a `pool_pages`-frame
    /// buffer pool, B+-tree indexes), so query metrics report
    /// `page_reads`/`buffer_hits` — the paper's I/O cost model.
    pub fn empdep_paged(pool_pages: usize) -> Session {
        Session {
            coupler: Coupler::empdep_paged(pool_pages),
        }
    }

    /// A session over an arbitrary schema/constraint pair.
    pub fn new(db: DatabaseDef, constraints: ConstraintSet) -> Result<Session> {
        Ok(Session {
            coupler: Coupler::new(db, constraints)?,
        })
    }

    /// The underlying coupler, for full control.
    pub fn coupler(&self) -> &Coupler {
        &self.coupler
    }

    pub fn coupler_mut(&mut self) -> &mut Coupler {
        &mut self.coupler
    }

    /// Pipeline configuration (optimization toggles, recursion depth…).
    pub fn config_mut(&mut self) -> &mut CouplerConfig {
        &mut self.coupler.config
    }

    /// Loads Prolog views/facts into the internal knowledge base.
    pub fn consult(&mut self, source: &str) -> Result<()> {
        self.coupler.consult(source)
    }

    /// Loads `empl(eno, nam, sal, dno)` tuples (empdep sessions).
    pub fn load_empl(&mut self, rows: &[(i64, &str, i64, i64)]) -> Result<()> {
        for &(eno, nam, sal, dno) in rows {
            self.coupler.load_tuple(
                "empl",
                &[
                    Datum::Int(eno),
                    Datum::text(nam),
                    Datum::Int(sal),
                    Datum::Int(dno),
                ],
            )?;
        }
        Ok(())
    }

    /// Loads `dept(dno, fct, mgr)` tuples (empdep sessions).
    pub fn load_dept(&mut self, rows: &[(i64, &str, i64)]) -> Result<()> {
        for &(dno, fct, mgr) in rows {
            self.coupler.load_tuple(
                "dept",
                &[Datum::Int(dno), Datum::text(fct), Datum::Int(mgr)],
            )?;
        }
        Ok(())
    }

    /// Loads one tuple into any relation.
    pub fn load(&mut self, relation: &str, values: &[Datum]) -> Result<()> {
        self.coupler.load_tuple(relation, values)
    }

    /// Re-validates all integrity constraints after bulk loading.
    pub fn check_integrity(&self) -> Result<()> {
        self.coupler.check_integrity()
    }

    /// Runs a query through the full pipeline. Goals use the paper's
    /// variable-free convention: `t_X` atoms are targets.
    pub fn query(&mut self, goals: &str, view_name: &str) -> Result<QueryRun> {
        self.coupler.query(goals, view_name)
    }

    /// Runs a query and renders an Appendix-style transcript of every
    /// pipeline stage (metaevaluated DBCL, optimized DBCL, SQL, metrics).
    pub fn explain(&mut self, goals: &str, view_name: &str) -> Result<String> {
        let run = self.coupler.query(goals, view_name)?;
        let mut out = String::new();
        let _ = writeln!(out, "?- metaevaluate({view_name}, [{goals}], DBCL).");
        for (i, branch) in run.branches.iter().enumerate() {
            if run.branches.len() > 1 {
                let _ = writeln!(out, "% branch {}", i + 1);
            }
            let _ = writeln!(out, "\nDBCL =\n{}", branch.dbcl_initial);
            if let Some(optimized) = &branch.dbcl_optimized {
                if optimized != &branch.dbcl_initial {
                    let _ = writeln!(out, "\n% after local optimization (§6):\n{optimized}");
                    let s = &branch.simplify_stats;
                    let _ = writeln!(
                        out,
                        "% rows removed: {} (chase {}, refint {}, minimize {}); \
                         comparisons removed: {}; symbols merged: {}",
                        s.rows_removed(),
                        s.rows_removed_chase,
                        s.rows_removed_refint,
                        s.rows_removed_minimize,
                        s.comparisons_removed,
                        s.symbols_merged,
                    );
                }
            }
            if let Some(reason) = &branch.empty_reason {
                let _ = writeln!(out, "\n% result provably empty: {reason}");
            }
            if let Some(sql) = &branch.sql {
                let _ = writeln!(out, "\n{sql}");
                let m = &branch.metrics;
                let _ = writeln!(
                    out,
                    "\n% executed: {} scan(s), {} row(s) scanned, {} join(s), {} answer(s)",
                    m.scans, m.rows_scanned, m.joins, branch.raw_answers
                );
            } else if branch.cache_hit {
                let _ = writeln!(out, "\n% answered from the internal result cache");
            }
        }
        let _ = writeln!(out, "\n% {} answer(s)", run.answers.len());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn little_session() -> Session {
        let mut s = Session::empdep();
        s.load_empl(&[
            (1, "control", 80_000, 10),
            (2, "smiley", 60_000, 10),
            (3, "jones", 30_000, 20),
            (4, "miller", 25_000, 20),
            (5, "leamas", 35_000, 20),
        ])
        .unwrap();
        s.load_dept(&[(10, "hq", 1), (20, "field", 2)]).unwrap();
        s.check_integrity().unwrap();
        s
    }

    #[test]
    fn session_end_to_end() {
        let mut s = little_session();
        s.consult(views::SAME_MANAGER).unwrap();
        let run = s.query("same_manager(t_X, jones)", "same_manager").unwrap();
        assert_eq!(run.answers.len(), 2);
    }

    #[test]
    fn explain_renders_all_stages() {
        let mut s = little_session();
        s.consult(views::SAME_MANAGER).unwrap();
        let text = s
            .explain("same_manager(t_X, jones)", "same_manager")
            .unwrap();
        assert!(text.contains("DBCL ="), "{text}");
        assert!(text.contains("after local optimization"), "{text}");
        assert!(text.contains("SELECT"), "{text}");
        assert!(text.contains("rows removed: 4"), "{text}");
        assert!(text.contains("2 answer(s)"), "{text}");
    }

    #[test]
    fn explain_notes_empty_results() {
        let mut s = little_session();
        s.consult(views::WORKS_DIR_FOR).unwrap();
        let text = s
            .explain(
                "works_dir_for(t_X, smiley), empl(E, t_X, S, D), less(S, 2000)",
                "q",
            )
            .unwrap();
        assert!(text.contains("provably empty"), "{text}");
        assert!(text.contains("0 answer(s)"), "{text}");
    }

    #[test]
    fn explain_notes_cache_hits() {
        let mut s = little_session();
        s.consult(views::WORKS_DIR_FOR).unwrap();
        s.query("works_dir_for(t_X, smiley)", "q").unwrap();
        let text = s.explain("works_dir_for(t_X, smiley)", "q").unwrap();
        assert!(text.contains("internal result cache"), "{text}");
    }

    #[test]
    fn config_toggles_optimization() {
        let mut s = little_session();
        s.consult(views::SAME_MANAGER).unwrap();
        s.config_mut().optimize = false;
        let run = s.query("same_manager(t_X, jones)", "same_manager").unwrap();
        assert!(run.branches[0].dbcl_optimized.is_none());
        assert_eq!(run.answers.len(), 2);
    }
}

//! Physical execution: instrumented scans, hash/nested-loop joins,
//! subquery filters, projection, DISTINCT and UNION.
//!
//! Every operator updates [`QueryMetrics`]; the front-end benchmarks use
//! these counters to show how many joins and scanned tuples the §6
//! simplification saves, independently of wall-clock noise.

use crate::backend::{AccessPath, Snapshot, StorageBackend};
use crate::error::{RqsError, RqsResult};
use crate::plan::{self, JoinCond, JoinMethod, PhysicalPlan, Restriction};
use crate::sql::ast::{SelectCore, SelectStmt};
use crate::value::{Datum, Tuple};
use std::collections::{HashMap, HashSet};

/// Work counters accumulated over a statement (including subqueries and
/// every UNION arm).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryMetrics {
    /// Base-table scans performed.
    pub scans: usize,
    /// Tuples read from base tables (index lookups count matches only).
    pub rows_scanned: u64,
    /// Join operators executed.
    pub joins: usize,
    /// Pairs/probes evaluated while joining.
    pub join_comparisons: u64,
    /// Tuples produced by join operators.
    pub intermediate_tuples: u64,
    /// Rows in the final result.
    pub result_rows: u64,
    /// Subqueries evaluated (NOT IN / IN).
    pub subqueries: usize,
    /// Pages faulted in from storage (paged backend only; 0 in-memory).
    pub page_reads: u64,
    /// Page fetches served by the buffer pool (paged backend only).
    pub buffer_hits: u64,
    /// WAL frames appended (paged backend DML; 0 for queries and
    /// in-memory databases).
    pub wal_appends: u64,
    /// WAL bytes appended, frame headers included (paged backend DML).
    pub wal_bytes: u64,
    /// Wall-clock of the whole statement (parse through result),
    /// nanoseconds. Filled by `Database::execute`.
    pub elapsed_nanos: u64,
    /// Time spent parsing the SQL text, nanoseconds.
    pub parse_nanos: u64,
    /// Time spent in resolve + plan (every core and UNION arm),
    /// nanoseconds. Accumulated by [`run_core`].
    pub plan_nanos: u64,
    /// Time spent executing the statement (for queries this includes
    /// planning; `plan_nanos` isolates it), nanoseconds.
    pub exec_nanos: u64,
}

impl QueryMetrics {
    /// Folds another metrics bundle into this one.
    pub fn absorb(&mut self, other: &QueryMetrics) {
        self.scans += other.scans;
        self.rows_scanned += other.rows_scanned;
        self.joins += other.joins;
        self.join_comparisons += other.join_comparisons;
        self.intermediate_tuples += other.intermediate_tuples;
        self.result_rows += other.result_rows;
        self.subqueries += other.subqueries;
        self.page_reads += other.page_reads;
        self.buffer_hits += other.buffer_hits;
        self.wal_appends += other.wal_appends;
        self.wal_bytes += other.wal_bytes;
        self.elapsed_nanos += other.elapsed_nanos;
        self.parse_nanos += other.parse_nanos;
        self.plan_nanos += other.plan_nanos;
        self.exec_nanos += other.exec_nanos;
    }
}

/// An executed (sub)result: labeled columns plus rows.
#[derive(Clone, Debug, PartialEq)]
pub struct Relation {
    pub columns: Vec<String>,
    pub rows: Vec<Tuple>,
}

/// Runs a full SELECT (with UNION arms); rows are deduplicated across arms
/// per SQL UNION semantics.
pub fn run_select(
    snap: &Snapshot,
    stmt: &SelectStmt,
    metrics: &mut QueryMetrics,
) -> RqsResult<Relation> {
    let mut first = run_core(snap, &stmt.core, metrics)?;
    if !stmt.unions.is_empty() {
        let mut seen: HashSet<Tuple> = first.rows.iter().cloned().collect();
        first.rows.retain({
            // Dedup the first arm itself (UNION output is a set).
            let mut kept: HashSet<Tuple> = HashSet::new();
            move |r| kept.insert(r.clone())
        });
        for arm in &stmt.unions {
            let rel = run_core(snap, arm, metrics)?;
            if rel.columns.len() != first.columns.len() {
                return Err(RqsError::Type(format!(
                    "UNION arms have {} vs {} columns",
                    first.columns.len(),
                    rel.columns.len()
                )));
            }
            for row in rel.rows {
                if seen.insert(row.clone()) {
                    first.rows.push(row);
                }
            }
        }
    }
    metrics.result_rows = first.rows.len() as u64;
    Ok(first)
}

/// Runs one SELECT core through resolve → plan → pipeline.
pub fn run_core(
    snap: &Snapshot,
    core: &SelectCore,
    metrics: &mut QueryMetrics,
) -> RqsResult<Relation> {
    let planning = std::time::Instant::now();
    let resolved = plan::resolve(snap, core)?;
    let physical = plan::plan(resolved);
    metrics.plan_nanos += planning.elapsed().as_nanos() as u64;
    run_physical(snap, &physical, metrics)
}

/// Executes a physical plan.
pub fn run_physical(
    snap: &Snapshot,
    physical: &PhysicalPlan,
    metrics: &mut QueryMetrics,
) -> RqsResult<Relation> {
    let core = &physical.core;
    // Combined-tuple offsets per var, in join order.
    let mut offsets: HashMap<usize, usize> = HashMap::new();
    let mut width = 0usize;
    for step in &physical.steps {
        offsets.insert(step.var, width);
        width += core.vars[step.var].width;
    }
    let at = |j: &JoinCond, left: bool| -> usize {
        if left {
            offsets[&j.lvar] + j.lcol
        } else {
            offsets[&j.rvar] + j.rcol
        }
    };
    let eval_join = |j: &JoinCond, row: &[Datum]| -> bool {
        j.op.eval(row[at(j, true)].total_cmp(&row[at(j, false)]))
    };

    let mut current: Vec<Tuple> = Vec::new();
    for (i, step) in physical.steps.iter().enumerate() {
        let scanned = scan_var(snap, core, step.var, metrics)?;
        if i == 0 {
            current = scanned;
            // Self-conditions on the first variable apply right here.
            let self_conds: Vec<&JoinCond> = core
                .joins
                .iter()
                .filter(|j| j.lvar == step.var && j.rvar == step.var)
                .collect();
            if !self_conds.is_empty() {
                current.retain(|row| self_conds.iter().all(|j| eval_join(j, row)));
            }
            continue;
        }
        metrics.joins += 1;
        let mut next: Vec<Tuple> = Vec::new();
        match &step.method {
            JoinMethod::Initial => {
                return Err(RqsError::Internal("Initial step after the first".into()))
            }
            JoinMethod::Hash { eq, extra } => {
                // Build on the newly scanned (right) side.
                let mut table_map: HashMap<Vec<Datum>, Vec<&Tuple>> = HashMap::new();
                for row in &scanned {
                    let key: Vec<Datum> = eq
                        .iter()
                        .map(|j| {
                            // The side referring to the new var indexes the
                            // scanned tuple directly.
                            if j.lvar == step.var {
                                row[j.lcol].clone()
                            } else {
                                row[j.rcol].clone()
                            }
                        })
                        .collect();
                    table_map.entry(key).or_default().push(row);
                }
                for left_row in &current {
                    metrics.join_comparisons += 1;
                    let key: Vec<Datum> = eq
                        .iter()
                        .map(|j| {
                            if j.lvar == step.var {
                                left_row[at(j, false)].clone()
                            } else {
                                left_row[at(j, true)].clone()
                            }
                        })
                        .collect();
                    if let Some(matches) = table_map.get(&key) {
                        for m in matches {
                            let mut combined = left_row.clone();
                            combined.extend(m.iter().cloned());
                            if extra.iter().all(|j| eval_join(j, &combined)) {
                                next.push(combined);
                            }
                        }
                    }
                }
            }
            JoinMethod::NestedLoop { conds } => {
                for left_row in &current {
                    for right_row in &scanned {
                        metrics.join_comparisons += 1;
                        let mut combined = left_row.clone();
                        combined.extend(right_row.iter().cloned());
                        if conds.iter().all(|j| eval_join(j, &combined)) {
                            next.push(combined);
                        }
                    }
                }
            }
        }
        metrics.intermediate_tuples += next.len() as u64;
        current = next;
    }

    // Subquery filters.
    for sq in &core.subqueries {
        metrics.subqueries += 1;
        let sub = run_select(snap, &sq.stmt, metrics)?;
        let set: HashSet<Datum> = sub
            .rows
            .into_iter()
            .filter_map(|mut r| {
                if r.is_empty() {
                    None
                } else {
                    Some(r.swap_remove(0))
                }
            })
            .collect();
        let off = offsets[&sq.var] + sq.col;
        current.retain(|row| set.contains(&row[off]) != sq.negated);
    }

    // Projection.
    let columns: Vec<String> = core
        .items
        .iter()
        .map(|&(var, col)| {
            let v = &core.vars[var];
            let table = snap.catalog.table(&v.table).expect("resolved table");
            format!("{}.{}", v.alias, table.columns[col].name)
        })
        .collect();
    let mut rows: Vec<Tuple> = current
        .iter()
        .map(|row| {
            core.items
                .iter()
                .map(|&(var, col)| row[offsets[&var] + col].clone())
                .collect()
        })
        .collect();

    if core.distinct {
        let mut seen: HashSet<Tuple> = HashSet::new();
        rows.retain(|r| seen.insert(r.clone()));
    }
    Ok(Relation { columns, rows })
}

/// Picks how candidate rows of one table are located for a set of
/// single-variable restrictions: an equality on an indexed column rides
/// a point lookup, inequalities (`<`, `<=`, `>`, `>=` — a BETWEEN is
/// two of them) on an indexed column collapse into one ordered range
/// cursor, anything else walks the heap. This is the access-path half
/// of [`scan_var`], shared with predicated UPDATE/DELETE so DML rides
/// exactly the same index machinery as SELECT scans.
pub fn choose_access(
    backend: &dyn StorageBackend,
    table: &str,
    restrictions: &[&Restriction],
) -> AccessPath {
    use crate::sql::ast::CmpOp;
    use std::ops::Bound;
    // Always-false literal comparisons are encoded with col == usize::MAX.
    if restrictions.iter().any(|r| r.col == usize::MAX) {
        return AccessPath::Nothing;
    }
    for r in restrictions {
        if matches!(r.op, CmpOp::Eq) && backend.has_index(table, r.col) {
            return AccessPath::KeyEq(r.col, r.value.clone());
        }
    }
    for r in restrictions {
        if !matches!(r.op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge)
            || !backend.has_index(table, r.col)
        {
            continue;
        }
        let col = r.col;
        let mut lower: Bound<&Datum> = Bound::Unbounded;
        let mut upper: Bound<&Datum> = Bound::Unbounded;
        for s in restrictions.iter().filter(|s| s.col == col) {
            match s.op {
                CmpOp::Gt => lower = tighten_lower(lower, Bound::Excluded(&s.value)),
                CmpOp::Ge => lower = tighten_lower(lower, Bound::Included(&s.value)),
                CmpOp::Lt => upper = tighten_upper(upper, Bound::Excluded(&s.value)),
                CmpOp::Le => upper = tighten_upper(upper, Bound::Included(&s.value)),
                _ => {}
            }
        }
        return AccessPath::KeyRange(col, lower.cloned(), upper.cloned());
    }
    AccessPath::FullScan
}

/// Scans one range variable, applying its pushed-down restrictions,
/// through the access path [`choose_access`] picks.
fn scan_var(
    snap: &Snapshot,
    core: &plan::ResolvedCore,
    var: usize,
    metrics: &mut QueryMetrics,
) -> RqsResult<Vec<Tuple>> {
    let info = &core.vars[var];
    metrics.scans += 1;
    let restrictions: Vec<&Restriction> =
        core.restrictions.iter().filter(|r| r.var == var).collect();
    let check = |row: &Tuple| -> bool {
        restrictions
            .iter()
            .all(|r| r.op.eval(row[r.col].total_cmp(&r.value)))
    };
    let full_scan = |metrics: &mut QueryMetrics| -> RqsResult<Vec<Tuple>> {
        // Filter over borrowed rows, cloning only the survivors.
        let mut rows = Vec::new();
        let mut scanned = 0u64;
        snap.backend.for_each(&info.table, &mut |row| {
            scanned += 1;
            if check(row) {
                rows.push(row.clone());
            }
        })?;
        metrics.rows_scanned += scanned;
        Ok(rows)
    };
    match choose_access(snap.backend, &info.table, &restrictions) {
        AccessPath::Nothing => Ok(Vec::new()),
        AccessPath::KeyEq(col, key) => {
            // The lookup may decline (`None`) even though `has_index`
            // said yes — e.g. while MVCC version metadata makes raw
            // index postings unsafe — so fall back to the scan.
            match snap.backend.index_lookup(&info.table, col, &key)? {
                Some(rows) => {
                    metrics.rows_scanned += rows.len() as u64;
                    Ok(rows.into_iter().filter(check).collect())
                }
                None => full_scan(metrics),
            }
        }
        AccessPath::KeyRange(col, lower, upper) => {
            match snap
                .backend
                .index_range(&info.table, col, lower.as_ref(), upper.as_ref())?
            {
                Some(rows) => {
                    metrics.rows_scanned += rows.len() as u64;
                    Ok(rows.into_iter().filter(check).collect())
                }
                None => full_scan(metrics),
            }
        }
        AccessPath::FullScan => full_scan(metrics),
    }
}

/// The tighter of two lower bounds (the larger value; on ties an
/// exclusive bound excludes more).
fn tighten_lower<'a>(
    cur: std::ops::Bound<&'a Datum>,
    new: std::ops::Bound<&'a Datum>,
) -> std::ops::Bound<&'a Datum> {
    use std::ops::Bound::*;
    let (cv, cx) = match cur {
        Unbounded => return new,
        Included(v) => (v, false),
        Excluded(v) => (v, true),
    };
    let (nv, nx) = match new {
        Unbounded => return cur,
        Included(v) => (v, false),
        Excluded(v) => (v, true),
    };
    match nv.total_cmp(cv) {
        std::cmp::Ordering::Greater => new,
        std::cmp::Ordering::Less => cur,
        std::cmp::Ordering::Equal if nx && !cx => new,
        std::cmp::Ordering::Equal => cur,
    }
}

/// The tighter of two upper bounds (the smaller value; on ties an
/// exclusive bound excludes more).
fn tighten_upper<'a>(
    cur: std::ops::Bound<&'a Datum>,
    new: std::ops::Bound<&'a Datum>,
) -> std::ops::Bound<&'a Datum> {
    use std::ops::Bound::*;
    let (cv, cx) = match cur {
        Unbounded => return new,
        Included(v) => (v, false),
        Excluded(v) => (v, true),
    };
    let (nv, nx) = match new {
        Unbounded => return cur,
        Included(v) => (v, false),
        Excluded(v) => (v, true),
    };
    match nv.total_cmp(cv) {
        std::cmp::Ordering::Less => new,
        std::cmp::Ordering::Greater => cur,
        std::cmp::Ordering::Equal if nx && !cx => new,
        std::cmp::Ordering::Equal => cur,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;

    fn empdep_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE empl (eno INT, nam TEXT, sal INT, dno INT)")
            .unwrap();
        db.execute("CREATE TABLE dept (dno INT, fct TEXT, mgr INT)")
            .unwrap();
        // control(1, smiley) manages dept 10; smiley manages dept 20.
        db.execute(
            "INSERT INTO empl VALUES
             (1, 'control', 80000, 10),
             (2, 'smiley', 60000, 10),
             (3, 'jones', 30000, 20),
             (4, 'miller', 25000, 20),
             (5, 'leamas', 35000, 20)",
        )
        .unwrap();
        db.execute("INSERT INTO dept VALUES (10, 'hq', 1), (20, 'field', 2)")
            .unwrap();
        db
    }

    #[test]
    fn single_table_restriction() {
        let mut db = empdep_db();
        let r = db
            .execute("SELECT v1.nam FROM empl v1 WHERE v1.sal < 40000")
            .unwrap();
        let names: Vec<String> = r.rows.iter().map(|t| t[0].to_string()).collect();
        assert_eq!(names, ["'jones'", "'miller'", "'leamas'"]);
        assert_eq!(r.metrics.scans, 1);
        assert_eq!(r.metrics.rows_scanned, 5);
        assert_eq!(r.metrics.joins, 0);
    }

    #[test]
    fn equijoin_works_dir_for_smiley() {
        // Appendix query: who works directly for smiley?
        let mut db = empdep_db();
        let r = db
            .execute(
                "SELECT v12.nam FROM empl v12, dept v13, empl v14
                 WHERE (v12.dno = v13.dno) AND (v13.mgr = v14.eno)
                   AND (v14.nam = 'smiley')",
            )
            .unwrap();
        let mut names: Vec<String> = r.rows.iter().map(|t| t[0].to_string()).collect();
        names.sort();
        assert_eq!(names, ["'jones'", "'leamas'", "'miller'"]);
        assert_eq!(r.metrics.joins, 2);
    }

    #[test]
    fn cross_product_when_no_condition() {
        let mut db = empdep_db();
        let r = db.execute("SELECT v1.nam FROM empl v1, dept v2").unwrap();
        assert_eq!(r.rows.len(), 10); // 5 × 2
    }

    #[test]
    fn inequality_join() {
        let mut db = empdep_db();
        let r = db
            .execute(
                "SELECT v1.nam FROM empl v1, empl v2
                 WHERE v1.sal > v2.sal AND v2.nam = 'smiley'",
            )
            .unwrap();
        let names: Vec<String> = r.rows.iter().map(|t| t[0].to_string()).collect();
        assert_eq!(names, ["'control'"]);
    }

    #[test]
    fn same_var_comparison() {
        let mut db = empdep_db();
        // Employees who manage their own department would need eno = mgr;
        // here: self-comparison inside one var.
        let r = db
            .execute("SELECT v1.nam FROM empl v1 WHERE v1.eno < v1.dno")
            .unwrap();
        assert_eq!(r.rows.len(), 5);
        let r = db
            .execute("SELECT v1.nam FROM empl v1 WHERE v1.eno > v1.dno")
            .unwrap();
        assert_eq!(r.rows.len(), 0);
    }

    #[test]
    fn distinct_dedupes() {
        let mut db = empdep_db();
        let r = db.execute("SELECT v1.dno FROM empl v1").unwrap();
        assert_eq!(r.rows.len(), 5);
        let r = db.execute("SELECT DISTINCT v1.dno FROM empl v1").unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn union_dedupes_across_arms() {
        let mut db = empdep_db();
        let r = db
            .execute(
                "SELECT v1.nam FROM empl v1 WHERE v1.sal < 40000
                 UNION SELECT v2.nam FROM empl v2 WHERE v2.dno = 20",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 3); // same three people in both arms
    }

    #[test]
    fn union_column_count_mismatch_rejected() {
        let mut db = empdep_db();
        let err = db.execute("SELECT v1.nam FROM empl v1 UNION SELECT v2.dno, v2.mgr FROM dept v2");
        assert!(matches!(err, Err(RqsError::Type(_))));
    }

    #[test]
    fn not_in_subquery() {
        let mut db = empdep_db();
        // §7: employees who are managers but do not manage dept 20.
        let r = db
            .execute(
                "SELECT v1.nam FROM empl v1 WHERE v1.eno NOT IN
                 (SELECT v2.mgr FROM dept v2 WHERE v2.dno = 20)",
            )
            .unwrap();
        let mut names: Vec<String> = r.rows.iter().map(|t| t[0].to_string()).collect();
        names.sort();
        assert_eq!(names.len(), 4);
        assert!(!names.contains(&"'smiley'".to_owned()));
        assert_eq!(r.metrics.subqueries, 1);
    }

    #[test]
    fn in_subquery_positive() {
        let mut db = empdep_db();
        let r = db
            .execute(
                "SELECT v1.nam FROM empl v1 WHERE v1.eno IN
                 (SELECT v2.mgr FROM dept v2)",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn index_accelerated_scan_counts_fewer_rows() {
        let mut db = empdep_db();
        db.execute("CREATE INDEX ON empl (nam)").unwrap();
        let r = db
            .execute("SELECT v1.sal FROM empl v1 WHERE v1.nam = 'jones'")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.metrics.rows_scanned, 1); // index hit, not 5
    }

    #[test]
    fn always_false_literal_condition_yields_empty() {
        let mut db = empdep_db();
        let r = db
            .execute("SELECT v1.nam FROM empl v1 WHERE 1 = 2")
            .unwrap();
        assert!(r.rows.is_empty());
        let r = db
            .execute("SELECT v1.nam FROM empl v1 WHERE 1 = 1")
            .unwrap();
        assert_eq!(r.rows.len(), 5);
    }

    #[test]
    fn metrics_absorb_sums() {
        let mut a = QueryMetrics {
            scans: 1,
            rows_scanned: 10,
            ..Default::default()
        };
        let b = QueryMetrics {
            scans: 2,
            joins: 1,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.scans, 3);
        assert_eq!(a.rows_scanned, 10);
        assert_eq!(a.joins, 1);
    }
}

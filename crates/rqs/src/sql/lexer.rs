//! SQL lexer. Keywords are case-insensitive; identifiers are kept verbatim.

use crate::error::{RqsError, RqsResult};

/// SQL token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Keyword or identifier (keywords compared case-insensitively).
    Word(String),
    /// Integer literal.
    Int(i64),
    /// String literal ('…' with '' escape).
    Str(String),
    /// Punctuation / operator.
    Sym(&'static str),
}

impl Tok {
    /// Case-insensitive keyword match.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes SQL source.
pub fn tokenize(src: &str) -> RqsResult<Vec<Tok>> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < bytes.len() {
        let b = bytes[pos];
        if b.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        if b == b'-' && bytes.get(pos + 1) == Some(&b'-') {
            while pos < bytes.len() && bytes[pos] != b'\n' {
                pos += 1;
            }
            continue;
        }
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = pos;
            while pos < bytes.len() && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_') {
                pos += 1;
            }
            out.push(Tok::Word(src[start..pos].to_owned()));
            continue;
        }
        if b.is_ascii_digit() {
            let start = pos;
            while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                pos += 1;
            }
            let text = &src[start..pos];
            let value = text
                .parse()
                .map_err(|_| RqsError::Syntax(format!("integer out of range: {text}")))?;
            out.push(Tok::Int(value));
            continue;
        }
        if b == b'\'' {
            pos += 1;
            let mut s = String::new();
            loop {
                match bytes.get(pos) {
                    Some(b'\'') if bytes.get(pos + 1) == Some(&b'\'') => {
                        s.push('\'');
                        pos += 2;
                    }
                    Some(b'\'') => {
                        pos += 1;
                        break;
                    }
                    Some(&c) => {
                        s.push(c as char);
                        pos += 1;
                    }
                    None => return Err(RqsError::Syntax("unterminated string literal".into())),
                }
            }
            out.push(Tok::Str(s));
            continue;
        }
        let two = if pos + 1 < bytes.len() {
            &src[pos..pos + 2]
        } else {
            ""
        };
        let sym = match two {
            "<>" => Some("<>"),
            "!=" => Some("<>"), // normalized
            "<=" => Some("<="),
            ">=" => Some(">="),
            _ => None,
        };
        if let Some(s) = sym {
            out.push(Tok::Sym(s));
            pos += 2;
            continue;
        }
        let one = match b {
            b'(' => "(",
            b')' => ")",
            b',' => ",",
            b'.' => ".",
            b'=' => "=",
            b'<' => "<",
            b'>' => ">",
            b'*' => "*",
            b';' => ";",
            b'+' => "+",
            b'-' => "-",
            other => {
                return Err(RqsError::Syntax(format!(
                    "unexpected character `{}`",
                    other as char
                )))
            }
        };
        out.push(Tok::Sym(one));
        pos += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_select() {
        let toks = tokenize("SELECT v1.nam FROM empl v1 WHERE v1.sal < 40000").unwrap();
        assert_eq!(toks[0], Tok::Word("SELECT".into()));
        assert!(toks[0].is_kw("select"));
        assert!(toks.contains(&Tok::Sym("<")));
        assert!(toks.contains(&Tok::Int(40000)));
    }

    #[test]
    fn string_escapes() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, [Tok::Str("it's".into())]);
    }

    #[test]
    fn neq_variants_normalize() {
        assert_eq!(tokenize("a <> b").unwrap()[1], Tok::Sym("<>"));
        assert_eq!(tokenize("a != b").unwrap()[1], Tok::Sym("<>"));
    }

    #[test]
    fn arithmetic_symbols_lex_but_double_dash_stays_a_comment() {
        let toks = tokenize("SET v = v + 1 - 2").unwrap();
        assert!(toks.contains(&Tok::Sym("+")));
        assert!(toks.contains(&Tok::Sym("-")));
        // `--` still starts a comment, so the minus pair vanishes.
        let toks = tokenize("v -- minus minus\n 1").unwrap();
        assert_eq!(toks, [Tok::Word("v".into()), Tok::Int(1)]);
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT -- the names\n v1.nam").unwrap();
        assert_eq!(toks.len(), 4); // SELECT v1 . nam
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn stray_character_errors() {
        assert!(tokenize("SELECT @").is_err());
    }
}

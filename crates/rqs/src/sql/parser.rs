//! Recursive-descent SQL parser.

use crate::catalog::{ColumnType, TableConstraint};
use crate::error::{RqsError, RqsResult};
use crate::sql::ast::*;
use crate::sql::lexer::{tokenize, Tok};
use crate::value::Datum;

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> RqsError {
        RqsError::Syntax(format!(
            "{} (near token {})",
            message.into(),
            self.pos.min(self.toks.len())
        ))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> RqsResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if self.peek()
            == Some(&Tok::Sym(match sym {
                "(" => "(",
                ")" => ")",
                "," => ",",
                "." => ".",
                "=" => "=",
                "<" => "<",
                ">" => ">",
                "<=" => "<=",
                ">=" => ">=",
                "<>" => "<>",
                "*" => "*",
                ";" => ";",
                "+" => "+",
                "-" => "-",
                _ => return false,
            }))
        {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> RqsResult<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{sym}`")))
        }
    }

    fn ident(&mut self) -> RqsResult<String> {
        match self.bump() {
            Some(Tok::Word(w)) => Ok(w),
            other => Err(self.err(format!("expected identifier, got {other:?}"))),
        }
    }

    fn literal(&mut self) -> RqsResult<Datum> {
        match self.bump() {
            Some(Tok::Int(i)) => Ok(Datum::Int(i)),
            Some(Tok::Str(s)) => Ok(Datum::text(&s)),
            other => Err(self.err(format!("expected literal, got {other:?}"))),
        }
    }

    // -- statements ---------------------------------------------------------

    fn statement(&mut self) -> RqsResult<Statement> {
        if self.eat_kw("CREATE") {
            if self.eat_kw("TABLE") {
                return self.create_table();
            }
            if self.eat_kw("INDEX") {
                return self.create_index();
            }
            return Err(self.err("expected TABLE or INDEX after CREATE"));
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let filter = if self.eat_kw("WHERE") {
                Some(self.dml_conditions(&table)?)
            } else {
                None
            };
            return Ok(Statement::Delete { table, filter });
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("DROP") {
            self.expect_kw("TABLE")?;
            let name = self.ident()?;
            return Ok(Statement::DropTable { name });
        }
        if self.eat_kw("EXPLAIN") {
            let analyze = self.eat_kw("ANALYZE");
            let inner = self.statement()?;
            match &inner {
                Statement::Select(_) => {}
                Statement::Update { .. } => {}
                Statement::Delete {
                    filter: Some(_), ..
                } => {}
                // The bare-DELETE truncation fast path has no plan to
                // measure; EXPLAIN describes it, ANALYZE refuses.
                Statement::Delete { filter: None, .. } if !analyze => {}
                Statement::Delete { .. } => {
                    return Err(self
                        .err("EXPLAIN ANALYZE accepts only SELECT, UPDATE, or predicated DELETE"));
                }
                _ => {
                    return Err(self.err("EXPLAIN accepts only SELECT, UPDATE, or DELETE"));
                }
            }
            return Ok(Statement::Explain {
                analyze,
                stmt: Box::new(inner),
            });
        }
        if self.peek().is_some_and(|t| t.is_kw("SELECT")) {
            return Ok(Statement::Select(self.select_stmt()?));
        }
        Err(self.err("expected a statement"))
    }

    fn create_table(&mut self) -> RqsResult<Statement> {
        let name = self.ident()?;
        self.expect_sym("(")?;
        let mut columns = Vec::new();
        let mut constraints = Vec::new();
        loop {
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                constraints.push(TableConstraint::Key {
                    columns: self.paren_ident_list()?,
                });
            } else if self.eat_kw("CHECK") {
                // CHECK (col BETWEEN lo AND hi)
                self.expect_sym("(")?;
                let column = self.ident()?;
                self.expect_kw("BETWEEN")?;
                let lo = self.int_literal()?;
                self.expect_kw("AND")?;
                let hi = self.int_literal()?;
                self.expect_sym(")")?;
                constraints.push(TableConstraint::ValueBound { column, lo, hi });
            } else if self.eat_kw("FOREIGN") {
                self.expect_kw("KEY")?;
                let columns = self.paren_ident_list()?;
                self.expect_kw("REFERENCES")?;
                let parent_table = self.ident()?;
                let parent_columns = self.paren_ident_list()?;
                constraints.push(TableConstraint::ForeignKey {
                    columns,
                    parent_table,
                    parent_columns,
                });
            } else {
                let col_name = self.ident()?;
                let ty_word = self.ident()?;
                let ty = match ty_word.to_ascii_uppercase().as_str() {
                    "INT" | "INTEGER" => ColumnType::Int,
                    "TEXT" | "CHAR" | "VARCHAR" | "STRING" => ColumnType::Text,
                    other => return Err(self.err(format!("unknown type {other}"))),
                };
                columns.push((col_name, ty));
            }
            if self.eat_sym(",") {
                continue;
            }
            self.expect_sym(")")?;
            break;
        }
        Ok(Statement::CreateTable {
            name,
            columns,
            constraints,
        })
    }

    fn int_literal(&mut self) -> RqsResult<i64> {
        match self.bump() {
            Some(Tok::Int(i)) => Ok(i),
            other => Err(self.err(format!("expected integer, got {other:?}"))),
        }
    }

    fn paren_ident_list(&mut self) -> RqsResult<Vec<String>> {
        self.expect_sym("(")?;
        let mut out = vec![self.ident()?];
        while self.eat_sym(",") {
            out.push(self.ident()?);
        }
        self.expect_sym(")")?;
        Ok(out)
    }

    fn create_index(&mut self) -> RqsResult<Statement> {
        // CREATE INDEX ON table (col) — anonymous indexes suffice here.
        self.expect_kw("ON")?;
        let table = self.ident()?;
        let cols = self.paren_ident_list()?;
        if cols.len() != 1 {
            return Err(self.err("indexes cover exactly one column"));
        }
        Ok(Statement::CreateIndex {
            table,
            column: cols.into_iter().next().expect("one column"),
        })
    }

    fn insert(&mut self) -> RqsResult<Statement> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym("(")?;
            let mut row = vec![self.literal()?];
            while self.eat_sym(",") {
                row.push(self.literal()?);
            }
            self.expect_sym(")")?;
            rows.push(row);
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    // -- DML with predicates ------------------------------------------------

    fn update(&mut self) -> RqsResult<Statement> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = vec![self.assignment()?];
        while self.eat_sym(",") {
            sets.push(self.assignment()?);
        }
        let filter = if self.eat_kw("WHERE") {
            self.dml_conditions(&table)?
        } else {
            Vec::new()
        };
        Ok(Statement::Update {
            table,
            sets,
            filter,
        })
    }

    fn assignment(&mut self) -> RqsResult<(String, SetExpr)> {
        let column = self.ident()?;
        self.expect_sym("=")?;
        let lhs = self.set_operand()?;
        let expr = if self.eat_sym("+") {
            SetExpr::Arith {
                lhs,
                op: ArithOp::Add,
                rhs: self.set_operand()?,
            }
        } else if self.eat_sym("-") {
            SetExpr::Arith {
                lhs,
                op: ArithOp::Sub,
                rhs: self.set_operand()?,
            }
        } else {
            SetExpr::Value(lhs)
        };
        Ok((column, expr))
    }

    fn set_operand(&mut self) -> RqsResult<SetOperand> {
        match self.peek() {
            Some(Tok::Word(_)) => Ok(SetOperand::Column(self.ident()?)),
            _ => Ok(SetOperand::Literal(self.literal()?)),
        }
    }

    /// The WHERE clause of UPDATE/DELETE: a conjunction of comparisons.
    /// Columns may be bare (`sal < 100`) or table-qualified
    /// (`empl.sal < 100`); bare names resolve against the target table,
    /// so the resulting [`Condition`]s feed the same restriction planner
    /// SELECT uses. Subqueries are not part of the DML dialect.
    fn dml_conditions(&mut self, table: &str) -> RqsResult<Vec<Condition>> {
        let mut conds = vec![self.dml_condition(table)?];
        while self.eat_kw("AND") {
            conds.push(self.dml_condition(table)?);
        }
        Ok(conds)
    }

    fn dml_condition(&mut self, table: &str) -> RqsResult<Condition> {
        let parenthesized = self.eat_sym("(");
        let lhs = self.dml_scalar(table)?;
        let op = self.cmp_op()?;
        let rhs = self.dml_scalar(table)?;
        if parenthesized {
            self.expect_sym(")")?;
        }
        Ok(Condition::Compare { lhs, op, rhs })
    }

    fn dml_scalar(&mut self, table: &str) -> RqsResult<Scalar> {
        match self.peek() {
            Some(Tok::Word(_)) => {
                let first = self.ident()?;
                let cref = if self.eat_sym(".") {
                    ColumnRef {
                        var: first,
                        column: self.ident()?,
                    }
                } else {
                    ColumnRef {
                        var: table.to_owned(),
                        column: first,
                    }
                };
                Ok(Scalar::Column(cref))
            }
            _ => Ok(Scalar::Literal(self.literal()?)),
        }
    }

    // -- queries ------------------------------------------------------------

    fn select_stmt(&mut self) -> RqsResult<SelectStmt> {
        let core = self.select_core()?;
        let mut unions = Vec::new();
        while self.eat_kw("UNION") {
            unions.push(self.select_core()?);
        }
        Ok(SelectStmt { core, unions })
    }

    fn select_core(&mut self) -> RqsResult<SelectCore> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = vec![self.column_ref()?];
        while self.eat_sym(",") {
            items.push(self.column_ref()?);
        }
        self.expect_kw("FROM")?;
        let mut from = vec![self.table_alias()?];
        while self.eat_sym(",") {
            from.push(self.table_alias()?);
        }
        let mut conds = Vec::new();
        if self.eat_kw("WHERE") {
            conds.push(self.condition()?);
            while self.eat_kw("AND") {
                conds.push(self.condition()?);
            }
        }
        Ok(SelectCore {
            distinct,
            items,
            from,
            conds,
        })
    }

    fn table_alias(&mut self) -> RqsResult<(String, String)> {
        let table = self.ident()?;
        // Alias is mandatory in the generated dialect but optional here;
        // a missing alias defaults to the table name.
        match self.peek() {
            Some(Tok::Word(w))
                if !w.eq_ignore_ascii_case("WHERE")
                    && !w.eq_ignore_ascii_case("UNION")
                    && !w.eq_ignore_ascii_case("AND") =>
            {
                let alias = self.ident()?;
                Ok((table, alias))
            }
            _ => Ok((table.clone(), table)),
        }
    }

    fn column_ref(&mut self) -> RqsResult<ColumnRef> {
        let var = self.ident()?;
        self.expect_sym(".")?;
        let column = self.ident()?;
        Ok(ColumnRef { var, column })
    }

    fn scalar(&mut self) -> RqsResult<Scalar> {
        match self.peek() {
            Some(Tok::Word(_)) => Ok(Scalar::Column(self.column_ref()?)),
            _ => Ok(Scalar::Literal(self.literal()?)),
        }
    }

    fn condition(&mut self) -> RqsResult<Condition> {
        let parenthesized = self.eat_sym("(");
        let lhs = self.scalar()?;
        let cond = if self.eat_kw("NOT") {
            self.expect_kw("IN")?;
            self.in_subquery(lhs, true)?
        } else if self.eat_kw("IN") {
            self.in_subquery(lhs, false)?
        } else {
            let op = self.cmp_op()?;
            let rhs = self.scalar()?;
            Condition::Compare { lhs, op, rhs }
        };
        if parenthesized {
            self.expect_sym(")")?;
        }
        Ok(cond)
    }

    fn in_subquery(&mut self, lhs: Scalar, negated: bool) -> RqsResult<Condition> {
        let Scalar::Column(col) = lhs else {
            return Err(self.err("IN requires a column on the left"));
        };
        self.expect_sym("(")?;
        let subquery = self.select_stmt()?;
        self.expect_sym(")")?;
        Ok(Condition::InSubquery {
            col,
            negated,
            subquery: Box::new(subquery),
        })
    }

    fn cmp_op(&mut self) -> RqsResult<CmpOp> {
        let op = match self.bump() {
            Some(Tok::Sym("=")) => CmpOp::Eq,
            Some(Tok::Sym("<>")) => CmpOp::Ne,
            Some(Tok::Sym("<")) => CmpOp::Lt,
            Some(Tok::Sym(">")) => CmpOp::Gt,
            Some(Tok::Sym("<=")) => CmpOp::Le,
            Some(Tok::Sym(">=")) => CmpOp::Ge,
            other => return Err(self.err(format!("expected comparison operator, got {other:?}"))),
        };
        Ok(op)
    }
}

/// Parses one SQL statement (a trailing `;` is allowed).
pub fn parse_statement(src: &str) -> RqsResult<Statement> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    let stmt = p.statement()?;
    p.eat_sym(";");
    if let Some(t) = p.peek() {
        return Err(p.err(format!("trailing tokens after statement: {t:?}")));
    }
    Ok(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table_with_constraints() {
        let stmt = parse_statement(
            "CREATE TABLE empl (eno INT, nam TEXT, sal INT, dno INT,
             PRIMARY KEY (eno),
             CHECK (sal BETWEEN 10000 AND 90000),
             FOREIGN KEY (dno) REFERENCES dept (dno))",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                constraints,
            } => {
                assert_eq!(name, "empl");
                assert_eq!(columns.len(), 4);
                assert_eq!(constraints.len(), 3);
            }
            other => panic!("expected CreateTable, got {other:?}"),
        }
    }

    #[test]
    fn parses_insert_multi_row() {
        let stmt = parse_statement(
            "INSERT INTO empl VALUES (1, 'smiley', 50000, 10), (2, 'jones', 30000, 10)",
        )
        .unwrap();
        match stmt {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "empl");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0][1], Datum::text("smiley"));
            }
            other => panic!("expected Insert, got {other:?}"),
        }
    }

    #[test]
    fn parses_paper_example_5_1() {
        let stmt = parse_statement(
            "SELECT v1.nam
             FROM empl v1, dept v2, empl v3, empl v4, dept v5, empl v6
             WHERE (v1.dno = v2.dno) AND (v2.mgr = v3.eno) AND
                   (v4.dno = v5.dno) AND (v5.mgr = v6.eno) AND
                   (v4.nam = 'jones') AND (v3.nam = v6.nam) AND
                   (v1.nam <> 'jones')",
        )
        .unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.core.from.len(), 6);
                assert_eq!(s.core.conds.len(), 7);
                assert!(s.unions.is_empty());
            }
            other => panic!("expected Select, got {other:?}"),
        }
    }

    #[test]
    fn parses_union() {
        let stmt = parse_statement(
            "SELECT v1.nam FROM empl v1 UNION SELECT v2.nam FROM empl v2 UNION SELECT v3.nam FROM empl v3",
        )
        .unwrap();
        match stmt {
            Statement::Select(s) => assert_eq!(s.unions.len(), 2),
            other => panic!("expected Select, got {other:?}"),
        }
    }

    #[test]
    fn parses_not_in_subquery() {
        let stmt = parse_statement(
            "SELECT v1.eno FROM empl v1 WHERE v1.eno NOT IN (SELECT v2.mgr FROM dept v2)",
        )
        .unwrap();
        match stmt {
            Statement::Select(s) => {
                assert!(matches!(
                    &s.core.conds[0],
                    Condition::InSubquery { negated: true, .. }
                ));
            }
            other => panic!("expected Select, got {other:?}"),
        }
    }

    #[test]
    fn parses_unparenthesized_conditions() {
        let stmt =
            parse_statement("SELECT v1.nam FROM empl v1 WHERE v1.sal < 40000 AND v1.dno = 10")
                .unwrap();
        match stmt {
            Statement::Select(s) => assert_eq!(s.core.conds.len(), 2),
            other => panic!("expected Select, got {other:?}"),
        }
    }

    #[test]
    fn alias_defaults_to_table_name() {
        let stmt = parse_statement("SELECT empl.nam FROM empl").unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.core.from[0], ("empl".to_owned(), "empl".to_owned()))
            }
            other => panic!("expected Select, got {other:?}"),
        }
    }

    #[test]
    fn parses_delete_and_drop() {
        assert!(matches!(
            parse_statement("DELETE FROM intermediate").unwrap(),
            Statement::Delete { filter: None, .. }
        ));
        assert!(matches!(
            parse_statement("DROP TABLE intermediate;").unwrap(),
            Statement::DropTable { .. }
        ));
    }

    #[test]
    fn parses_predicated_delete() {
        let stmt = parse_statement("DELETE FROM empl WHERE sal < 20000 AND dno = 3").unwrap();
        let Statement::Delete {
            table,
            filter: Some(conds),
        } = stmt
        else {
            panic!("expected predicated delete")
        };
        assert_eq!(table, "empl");
        assert_eq!(conds.len(), 2);
        // Bare columns resolve against the target table.
        assert_eq!(
            conds[0],
            Condition::Compare {
                lhs: Scalar::Column(ColumnRef {
                    var: "empl".into(),
                    column: "sal".into()
                }),
                op: CmpOp::Lt,
                rhs: Scalar::Literal(Datum::Int(20000)),
            }
        );
    }

    #[test]
    fn parses_update_with_arithmetic_and_where() {
        let stmt = parse_statement("UPDATE counter SET v = v + 1 WHERE v >= 0").unwrap();
        let Statement::Update {
            table,
            sets,
            filter,
        } = stmt
        else {
            panic!("expected update")
        };
        assert_eq!(table, "counter");
        assert_eq!(
            sets,
            vec![(
                "v".to_owned(),
                SetExpr::Arith {
                    lhs: SetOperand::Column("v".into()),
                    op: ArithOp::Add,
                    rhs: SetOperand::Literal(Datum::Int(1)),
                }
            )]
        );
        assert_eq!(filter.len(), 1);
    }

    #[test]
    fn parses_update_multi_set_without_where() {
        let stmt = parse_statement("UPDATE empl SET nam = 'x', sal = sal - 500, dno = 2").unwrap();
        let Statement::Update { sets, filter, .. } = stmt else {
            panic!("expected update")
        };
        assert_eq!(sets.len(), 3);
        assert_eq!(
            sets[0].1,
            SetExpr::Value(SetOperand::Literal(Datum::text("x")))
        );
        assert_eq!(
            sets[1].1,
            SetExpr::Arith {
                lhs: SetOperand::Column("sal".into()),
                op: ArithOp::Sub,
                rhs: SetOperand::Literal(Datum::Int(500)),
            }
        );
        assert!(filter.is_empty());
    }

    #[test]
    fn parses_qualified_and_parenthesized_dml_conditions() {
        let stmt = parse_statement(
            "DELETE FROM empl WHERE (empl.sal > 1000) AND (nam <> 'jones') AND sal <= dno",
        )
        .unwrap();
        let Statement::Delete {
            filter: Some(conds),
            ..
        } = stmt
        else {
            panic!("expected predicated delete")
        };
        assert_eq!(conds.len(), 3);
    }

    #[test]
    fn rejects_malformed_dml() {
        assert!(parse_statement("UPDATE t").is_err());
        assert!(parse_statement("UPDATE t SET").is_err());
        assert!(parse_statement("UPDATE t SET a = ").is_err());
        assert!(parse_statement("UPDATE t SET a = 1 WHERE").is_err());
        assert!(parse_statement("DELETE FROM t WHERE").is_err());
        assert!(
            parse_statement("DELETE FROM t WHERE a IN (SELECT v.b FROM s v)").is_err(),
            "subqueries are not part of the DML dialect"
        );
    }

    #[test]
    fn parses_create_index() {
        let stmt = parse_statement("CREATE INDEX ON empl (dno)").unwrap();
        assert_eq!(
            stmt,
            Statement::CreateIndex {
                table: "empl".into(),
                column: "dno".into()
            }
        );
    }

    #[test]
    fn select_display_round_trips() {
        let src =
            "SELECT v1.nam FROM empl v1, dept v2 WHERE (v1.dno = v2.dno) AND (v1.nam <> 'jones')";
        let Statement::Select(s) = parse_statement(src).unwrap() else {
            panic!()
        };
        let Statement::Select(s2) = parse_statement(&s.to_string()).unwrap() else {
            panic!()
        };
        assert_eq!(s, s2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_statement("SELEKT foo").is_err());
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("SELECT v1.nam FROM empl v1 WHERE").is_err());
        assert!(parse_statement("SELECT v1.nam FROM empl v1 extra garbage").is_err());
    }

    #[test]
    fn rejects_literal_in_clause_without_column() {
        assert!(parse_statement(
            "SELECT v1.nam FROM empl v1 WHERE 1 IN (SELECT v2.dno FROM dept v2)"
        )
        .is_err());
    }
}

//! SQL abstract syntax.

use crate::catalog::{ColumnType, TableConstraint};
use crate::value::Datum;
use std::fmt;

/// A qualified column reference `var.column`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ColumnRef {
    pub var: String,
    pub column: String,
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.var, self.column)
    }
}

/// A scalar operand: column reference or literal.
#[derive(Clone, PartialEq, Debug)]
pub enum Scalar {
    Column(ColumnRef),
    Literal(Datum),
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Column(c) => write!(f, "{c}"),
            Scalar::Literal(d) => write!(f, "{d}"),
        }
    }
}

/// Comparison operators of the WHERE clause.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
}

impl CmpOp {
    pub fn eval(&self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Gt => ord == Greater,
            CmpOp::Le => ord != Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    pub fn flip(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
        })
    }
}

/// One conjunct of the WHERE clause.
#[derive(Clone, PartialEq, Debug)]
pub enum Condition {
    /// `lhs op rhs`.
    Compare { lhs: Scalar, op: CmpOp, rhs: Scalar },
    /// `col [NOT] IN (subquery)` — the §7 negation device.
    InSubquery {
        col: ColumnRef,
        negated: bool,
        subquery: Box<SelectStmt>,
    },
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Compare { lhs, op, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Condition::InSubquery {
                col,
                negated,
                subquery,
            } => {
                let not = if *negated { "NOT " } else { "" };
                write!(f, "({col} {not}IN ({subquery}))")
            }
        }
    }
}

/// One SELECT block (no UNION).
#[derive(Clone, PartialEq, Debug)]
pub struct SelectCore {
    pub distinct: bool,
    pub items: Vec<ColumnRef>,
    /// `(table, alias)` pairs of the FROM clause.
    pub from: Vec<(String, String)>,
    /// Conjunctive WHERE clause.
    pub conds: Vec<Condition>,
}

impl fmt::Display for SelectCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{item}")?;
        }
        f.write_str(" FROM ")?;
        for (i, (table, alias)) in self.from.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{table} {alias}")?;
        }
        if !self.conds.is_empty() {
            f.write_str(" WHERE ")?;
            for (i, c) in self.conds.iter().enumerate() {
                if i > 0 {
                    f.write_str(" AND ")?;
                }
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

/// A full query: one core plus any number of UNION arms.
#[derive(Clone, PartialEq, Debug)]
pub struct SelectStmt {
    pub core: SelectCore,
    pub unions: Vec<SelectCore>,
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.core)?;
        for u in &self.unions {
            write!(f, " UNION {u}")?;
        }
        Ok(())
    }
}

/// One operand of a SET expression: a column of the updated table
/// (referenced bare, no range variable) or a literal.
#[derive(Clone, PartialEq, Debug)]
pub enum SetOperand {
    Column(String),
    Literal(Datum),
}

impl fmt::Display for SetOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetOperand::Column(c) => f.write_str(c),
            SetOperand::Literal(d) => write!(f, "{d}"),
        }
    }
}

/// Integer arithmetic allowed in SET expressions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArithOp {
    Add,
    Sub,
}

impl ArithOp {
    /// Wrapping evaluation — DML must not panic on i64 overflow.
    pub fn eval(&self, lhs: i64, rhs: i64) -> i64 {
        match self {
            ArithOp::Add => lhs.wrapping_add(rhs),
            ArithOp::Sub => lhs.wrapping_sub(rhs),
        }
    }
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
        })
    }
}

/// The right-hand side of one `SET col = …` assignment: a plain operand
/// or `operand ± operand` (INT columns only — enough for the classic
/// `UPDATE counter SET v = v + 1`).
#[derive(Clone, PartialEq, Debug)]
pub enum SetExpr {
    Value(SetOperand),
    Arith {
        lhs: SetOperand,
        op: ArithOp,
        rhs: SetOperand,
    },
}

impl fmt::Display for SetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::Value(v) => write!(f, "{v}"),
            SetExpr::Arith { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
        }
    }
}

/// Any statement the engine accepts.
#[derive(Clone, PartialEq, Debug)]
pub enum Statement {
    CreateTable {
        name: String,
        columns: Vec<(String, ColumnType)>,
        constraints: Vec<TableConstraint>,
    },
    CreateIndex {
        table: String,
        column: String,
    },
    Insert {
        table: String,
        rows: Vec<Vec<Datum>>,
    },
    /// `DELETE FROM t [WHERE pred]`. Without WHERE this is the
    /// truncation fast path the front-end uses to reset whole
    /// intermediate relations — still a single backend truncate, but
    /// subject to the same restrict rule as predicated DELETE: a parent
    /// that referencing children still point at refuses to truncate.
    /// With WHERE it is row-level DML: the predicate is a conjunction
    /// of comparisons, matching rows are tombstoned in place, and
    /// deleting a referenced parent row is refused.
    Delete {
        table: String,
        filter: Option<Vec<Condition>>,
    },
    /// `UPDATE t SET col = expr, … [WHERE pred]` — in-place row rewrite
    /// with index maintenance and constraint re-checks on the assigned
    /// columns.
    Update {
        table: String,
        sets: Vec<(String, SetExpr)>,
        filter: Vec<Condition>,
    },
    DropTable {
        name: String,
    },
    Select(SelectStmt),
    /// `EXPLAIN [ANALYZE] SELECT …` / `EXPLAIN UPDATE|DELETE …` —
    /// returns the chosen plan as text rows. With `analyze` the inner
    /// statement (SELECT only) also runs and the plan is annotated with
    /// actual row counts, page I/O, and elapsed time.
    Explain {
        analyze: bool,
        stmt: Box<Statement>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_eval() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.eval(Equal));
        assert!(CmpOp::Ne.eval(Less));
        assert!(CmpOp::Lt.eval(Less));
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Ge.eval(Greater));
        assert!(!CmpOp::Gt.eval(Equal));
    }

    #[test]
    fn cmp_op_flip() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        assert_eq!(CmpOp::Le.flip(), CmpOp::Ge);
    }

    #[test]
    fn display_select() {
        let stmt = SelectCore {
            distinct: false,
            items: vec![ColumnRef {
                var: "v1".into(),
                column: "nam".into(),
            }],
            from: vec![("empl".into(), "v1".into())],
            conds: vec![Condition::Compare {
                lhs: Scalar::Column(ColumnRef {
                    var: "v1".into(),
                    column: "sal".into(),
                }),
                op: CmpOp::Lt,
                rhs: Scalar::Literal(Datum::Int(40000)),
            }],
        };
        assert_eq!(
            stmt.to_string(),
            "SELECT v1.nam FROM empl v1 WHERE (v1.sal < 40000)"
        );
    }
}

//! The SQL dialect of the relational query system.
//!
//! Covers exactly what the 1984 front-end generates plus the DDL/DML needed
//! to stand the database up:
//!
//! ```sql
//! CREATE TABLE empl (eno INT, nam TEXT, sal INT, dno INT,
//!                    PRIMARY KEY (eno),
//!                    CHECK (sal BETWEEN 10000 AND 90000),
//!                    FOREIGN KEY (dno) REFERENCES dept (dno))
//! CREATE INDEX ON empl (dno)
//! INSERT INTO empl VALUES (1, 'smiley', 50000, 10), (2, 'jones', 30000, 10)
//! SELECT v1.nam FROM empl v1, dept v2
//!   WHERE (v1.dno = v2.dno) AND (v1.nam <> 'jones')
//! SELECT … UNION SELECT …
//! SELECT … WHERE v1.eno NOT IN (SELECT v2.mgr FROM dept v2)
//! DELETE FROM intermediate
//! DROP TABLE intermediate
//! ```
//!
//! Conjunctive queries need no nesting ([Kim 1982], cited in §5); `NOT IN`
//! exists for the §7 negation extension.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{CmpOp, ColumnRef, Condition, Scalar, SelectCore, SelectStmt, Statement};
pub use parser::parse_statement;

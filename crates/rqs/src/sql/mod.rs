//! The SQL dialect of the relational query system.
//!
//! Covers exactly what the 1984 front-end generates plus the DDL/DML needed
//! to stand the database up:
//!
//! ```sql
//! CREATE TABLE empl (eno INT, nam TEXT, sal INT, dno INT,
//!                    PRIMARY KEY (eno),
//!                    CHECK (sal BETWEEN 10000 AND 90000),
//!                    FOREIGN KEY (dno) REFERENCES dept (dno))
//! CREATE INDEX ON empl (dno)
//! INSERT INTO empl VALUES (1, 'smiley', 50000, 10), (2, 'jones', 30000, 10)
//! SELECT v1.nam FROM empl v1, dept v2
//!   WHERE (v1.dno = v2.dno) AND (v1.nam <> 'jones')
//! SELECT … UNION SELECT …
//! SELECT … WHERE v1.eno NOT IN (SELECT v2.mgr FROM dept v2)
//! UPDATE empl SET sal = sal + 500, dno = 2 WHERE eno = 1
//! DELETE FROM empl WHERE sal < 10000 AND dno = 3
//! DELETE FROM intermediate
//! DROP TABLE intermediate
//! ```
//!
//! Conjunctive queries need no nesting ([Kim 1982], cited in §5); `NOT IN`
//! exists for the §7 negation extension.
//!
//! # DML notes
//!
//! `UPDATE` and predicated `DELETE` take a conjunction of comparisons
//! whose columns are written bare (`sal < 100`) or table-qualified
//! (`empl.sal < 100`) — no range variables, no subqueries. The
//! predicate feeds the same restriction planner as SELECT scans, so an
//! equality on an indexed column rides `index_lookup` and inequalities
//! collapse into one `index_range` cursor. SET expressions are a column
//! or literal, optionally `± ` another operand (INT columns only) —
//! enough for the textbook `UPDATE counter SET v = v + 1`. Assigned
//! columns are re-checked against CHECK bounds, keys (against the
//! post-statement state) and foreign keys, and updating or deleting a
//! parent row still referenced by a child is refused (restrict
//! semantics). Bare `DELETE FROM t` remains the truncation fast path
//! the front-end uses to reset whole intermediate relations, but it
//! now carries the same restrict rule: truncating a parent table that
//! referencing children still point at is refused.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{
    ArithOp, CmpOp, ColumnRef, Condition, Scalar, SelectCore, SelectStmt, SetExpr, SetOperand,
    Statement,
};
pub use parser::parse_statement;

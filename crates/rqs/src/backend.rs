//! Pluggable physical storage behind the relational engine.
//!
//! The planner and executor read tables through the [`StorageBackend`]
//! trait; the catalog keeps only schemas. Two implementations exist:
//!
//! * [`InMemoryBackend`] — the original representation: a `Vec<Tuple>`
//!   per table plus `BTreeMap` secondary indexes. Zero I/O, zero page
//!   accounting; what `Database::new()` gives you.
//! * [`PagedBackend`] — the [`storage`] crate's engine: slotted heap
//!   pages behind a clock-eviction buffer pool, B+-tree indexes, and a
//!   persistent system catalog. Scans and index lookups touch pages, so
//!   [`crate::QueryMetrics`] can report `page_reads`/`buffer_hits` — the
//!   paper's actual cost model.
//!
//! Both backends answer set-oriented SQL identically (the differential
//! test in `tests/backend_differential.rs` enforces this); they differ
//! only in physical cost.

use crate::catalog::{Catalog, Column, TableConstraint};
use crate::error::{RqsError, RqsResult};
use crate::value::{Datum, Tuple};
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::path::Path;
use storage::engine::ColType;
use storage::{Fault, HistogramsSnapshot, MetricsSnapshot, PoolStats, StorageEngine, StorageError};

impl From<StorageError> for RqsError {
    fn from(e: StorageError) -> RqsError {
        match e {
            StorageError::UnknownTable(t) => RqsError::UnknownTable(t),
            StorageError::DuplicateTable(t) => RqsError::DuplicateTable(t),
            StorageError::Conflict(m) => RqsError::Conflict(m),
            other => RqsError::Internal(other.to_string()),
        }
    }
}

/// Row-lock acquisition callback installed by the shared server around
/// a DML statement: called with the table name and a stable row key
/// (derived from the rid) for every row the statement is about to
/// mutate — *before* the engine mutates it. Returning an error aborts
/// the statement; a retryable conflict means another session holds the
/// row.
pub type RowLockHook = std::sync::Arc<dyn Fn(&str, u64) -> RqsResult<()> + Send + Sync>;

/// Physical table storage: rows in, rows out, plus secondary indexes.
///
/// Backends are `Send + Sync` so one database can be owned by the
/// shared server, handed between session threads, and read through
/// `&self` by many snapshot SELECTs at once (mutating statements still
/// execute one at a time, under the server's statement latch).
pub trait StorageBackend: Send + Sync {
    /// Short human-readable backend name (shows up in diagnostics).
    fn name(&self) -> &'static str;

    fn create_table(&mut self, name: &str, columns: &[Column]) -> RqsResult<()>;

    fn drop_table(&mut self, name: &str) -> RqsResult<()>;

    /// Removes all rows, returning how many were removed.
    fn truncate(&mut self, name: &str) -> RqsResult<usize>;

    /// Appends one (already validated) tuple.
    fn insert(&mut self, name: &str, tuple: Tuple) -> RqsResult<()>;

    fn row_count(&self, name: &str) -> RqsResult<usize>;

    /// Every tuple of the table, in storage order.
    fn scan(&self, name: &str) -> RqsResult<Vec<Tuple>>;

    /// Visits every tuple without materializing the table, so callers
    /// can filter before cloning (the executor's scan path).
    fn for_each(&self, name: &str, f: &mut dyn FnMut(&Tuple)) -> RqsResult<()> {
        for row in self.scan(name)? {
            f(&row);
        }
        Ok(())
    }

    /// Creates (and backfills) a secondary index on column `col`.
    fn create_index(&mut self, name: &str, col: usize) -> RqsResult<()>;

    fn has_index(&self, name: &str, col: usize) -> bool;

    /// Tuples whose `col` equals `key` via an index, or `None` when the
    /// column has no index (caller falls back to a scan).
    fn index_lookup(&self, name: &str, col: usize, key: &Datum) -> RqsResult<Option<Vec<Tuple>>>;

    /// Tuples whose `col` falls inside `(lower, upper)` via an ordered
    /// index cursor, or `None` when the column has no index (caller
    /// falls back to a scan). Feeds inequality restrictions (`<`, `<=`,
    /// `>`, `>=`, `BETWEEN`) without touching the whole table.
    fn index_range(
        &self,
        _name: &str,
        _col: usize,
        _lower: Bound<&Datum>,
        _upper: Bound<&Datum>,
    ) -> RqsResult<Option<Vec<Tuple>>> {
        Ok(None)
    }

    /// Deletes every row the access path yields that satisfies `pred`,
    /// returning how many were removed. The predicate is a pure
    /// function of the tuple, so both backends remove the same multiset
    /// of rows. Constraint checks are the caller's job (the relational
    /// layer re-validates before mutating).
    fn delete_where(
        &mut self,
        name: &str,
        access: &AccessPath,
        pred: &mut dyn FnMut(&Tuple) -> bool,
    ) -> RqsResult<usize>;

    /// Rewrites every row the access path yields that satisfies `pred`
    /// with the tuple `apply` produces, returning how many changed.
    /// `apply` is a pure function of the old tuple (the relational
    /// layer pre-validated its output against schema and constraints).
    fn update_where(
        &mut self,
        name: &str,
        access: &AccessPath,
        pred: &mut dyn FnMut(&Tuple) -> bool,
        apply: &mut dyn FnMut(&Tuple) -> Tuple,
    ) -> RqsResult<usize>;

    /// Whether any stored tuple matches `values` at columns `cols`
    /// (constraint probes). Implementations should early-exit rather
    /// than materialize the table.
    fn contains(&self, name: &str, cols: &[usize], values: &[Datum]) -> RqsResult<bool> {
        Ok(self
            .scan(name)?
            .iter()
            .any(|row| cols.iter().zip(values).all(|(&c, v)| &row[c] == v)))
    }

    /// Cumulative physical I/O counters (all zero for in-memory).
    fn stats(&self) -> PoolStats;

    /// Engine-wide observability snapshot: every storage-layer counter
    /// (buffer pool, WAL, access methods). All zero for in-memory, so
    /// both backends answer the `STATS` surface uniformly.
    fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Engine latency histograms (WAL fsync, commit force, fault-in).
    /// All zero for in-memory backends — durability costs nothing there.
    fn histograms(&self) -> HistogramsSnapshot {
        HistogramsSnapshot::default()
    }

    /// Writes dirty pages back to durable storage (no-op in-memory).
    fn flush(&self) -> RqsResult<()> {
        Ok(())
    }

    /// Opens a transaction grouping the following mutations into one
    /// atomic, durable unit and makes it the active one.
    fn begin(&mut self) -> RqsResult<()> {
        Ok(())
    }

    /// Commits the active transaction (forces the WAL on paged backends).
    fn commit(&mut self) -> RqsResult<()> {
        Ok(())
    }

    /// Rolls the active transaction back; never fails (a backend that
    /// cannot roll back forward-errors on the mutations themselves).
    fn abort(&mut self) {}

    /// Whether a transaction is currently active (joined by mutations).
    /// `Database::execute` skips its per-statement transaction wrapper
    /// when one is — the session owning it commits or aborts instead.
    fn in_txn(&self) -> bool {
        false
    }

    // -- Session-scoped transactions (the shared server's API) ---------
    //
    // A server session opens a transaction once (`begin_session`), then
    // resumes it before and suspends it after each of its statements;
    // any number of sessions' transactions may be open at a time. The
    // defaults emulate this over begin/commit/abort for backends with a
    // single implicit transaction — correct only single-sessioned;
    // both shipped backends override with real multi-transaction state.

    /// Opens a session transaction and returns its id, leaving it
    /// *suspended* (resume it before the first statement).
    fn begin_session(&mut self) -> RqsResult<u64> {
        self.begin()?;
        Ok(0)
    }

    /// Makes an open session transaction active.
    fn resume_session(&mut self, _id: u64) -> RqsResult<()> {
        Ok(())
    }

    /// Suspends the active session transaction (it stays open).
    fn suspend_session(&mut self) {}

    /// Commits an open session transaction by id.
    fn commit_session(&mut self, _id: u64) -> RqsResult<()> {
        self.commit()
    }

    /// Rolls an open session transaction back by id.
    fn abort_session(&mut self, _id: u64) {
        self.abort();
    }

    /// Persists the integrity constraints of a table so they survive
    /// reopen (paged backends only; in-memory state dies with the
    /// process anyway).
    fn persist_constraints(
        &mut self,
        _name: &str,
        _constraints: &[TableConstraint],
    ) -> RqsResult<()> {
        Ok(())
    }

    /// Constraints previously persisted for a table (empty when the
    /// backend does not persist them).
    fn stored_constraints(&self, _name: &str) -> RqsResult<Vec<TableConstraint>> {
        Ok(Vec::new())
    }

    /// Checkpoint: make the database file self-contained (write dirty
    /// pages back and truncate the WAL where one exists).
    fn checkpoint(&self) -> RqsResult<()> {
        self.flush()
    }

    /// Test/ops helper: drop the backend as a crash would — without
    /// flushing buffered state — so reopening must run crash recovery.
    fn crash(self: Box<Self>) {}

    /// Whether the backend identifies rows stably enough for
    /// row-granular locks (paged backends: rids). In-memory tables use
    /// positional indices that shift on delete, so they stay under
    /// table-level exclusive locks.
    fn supports_row_locks(&self) -> bool {
        false
    }

    /// Installs (`Some`) or clears (`None`) the per-row lock hook.
    /// Ignored by backends without row-lock support.
    fn set_row_lock_hook(&mut self, _hook: Option<RowLockHook>) {}

    /// Whether reads can run against MVCC commit-timestamp snapshots
    /// instead of the lock manager (paged backends only; the in-memory
    /// backend keeps strict two-phase reads).
    fn supports_snapshot_reads(&self) -> bool {
        false
    }

    /// Toggles snapshot reads (no-op without support). Callers toggle
    /// only while no transactions or statement snapshots are open.
    fn set_snapshot_reads(&mut self, _on: bool) {}

    /// Opens the statement-scoped read snapshot for an autocommit
    /// statement (no-op without snapshot support; sessions inside BEGIN
    /// read through their transaction's snapshot instead).
    fn open_statement_snapshot(&self) {}

    /// Closes the statement snapshot and probe mode; safe to call
    /// unconditionally, including on error paths.
    fn close_statement_snapshot(&self) {}

    /// Marks subsequent reads as constraint probes: latest committed
    /// state plus the writer's own rows, conflicting retryably when the
    /// probed table carries another transaction's uncommitted writes.
    fn set_constraint_probe(&self, _on: bool) {}
}

/// A read view over schema + storage, what the planner and executor
/// carry around.
#[derive(Clone, Copy)]
pub struct Snapshot<'a> {
    pub catalog: &'a Catalog,
    pub backend: &'a dyn StorageBackend,
}

/// How a statement locates its candidate rows — the planner's
/// access-path choice (see `exec::choose_access`), handed through the
/// backend trait so predicated UPDATE/DELETE ride the same index
/// machinery as SELECT scans. The access path over-approximates: the
/// backend still applies the full predicate to every candidate.
#[derive(Clone, Debug, PartialEq)]
pub enum AccessPath {
    /// Walk the whole table.
    FullScan,
    /// Equality restriction on an indexed column: point lookup.
    KeyEq(usize, Datum),
    /// Inequality restrictions on an indexed column, collapsed into one
    /// ordered-index range cursor.
    KeyRange(usize, Bound<Datum>, Bound<Datum>),
    /// A contradictory predicate: no row can match.
    Nothing,
}

impl std::fmt::Display for AccessPath {
    /// EXPLAIN's rendering of the access-path choice, shared by SELECT
    /// annotations and the UPDATE/DELETE plans.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn side(f: &mut std::fmt::Formatter<'_>, b: &Bound<Datum>, open: bool) -> std::fmt::Result {
            match (b, open) {
                (Bound::Included(v), true) => write!(f, "[{v}"),
                (Bound::Excluded(v), true) => write!(f, "({v}"),
                (Bound::Unbounded, true) => write!(f, "(-inf"),
                (Bound::Included(v), false) => write!(f, "{v}]"),
                (Bound::Excluded(v), false) => write!(f, "{v})"),
                (Bound::Unbounded, false) => write!(f, "+inf)"),
            }
        }
        match self {
            AccessPath::FullScan => write!(f, "FullScan"),
            AccessPath::KeyEq(col, key) => write!(f, "IndexEq col#{col} = {key}"),
            AccessPath::KeyRange(col, lower, upper) => {
                write!(f, "IndexRange col#{col} in ")?;
                side(f, lower, true)?;
                write!(f, ", ")?;
                side(f, upper, false)
            }
            AccessPath::Nothing => write!(f, "Nothing (contradictory predicate)"),
        }
    }
}

// ---------------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------------

/// Size of a tuple under the storage crate's record encoding, computed
/// without serializing (2-byte count, 1-byte tag + 8 for ints, 1-byte
/// tag + 4-byte length + bytes for text).
pub(crate) fn encoded_tuple_len(tuple: &Tuple) -> usize {
    2 + tuple
        .iter()
        .map(|d| match d {
            Datum::Int(_) => 9,
            Datum::Text(s) => 5 + s.len(),
        })
        .sum::<usize>()
}

#[derive(Clone, Debug, Default)]
struct MemTable {
    rows: Vec<Tuple>,
    /// column index → value → row ids.
    indexes: BTreeMap<usize, BTreeMap<Datum, Vec<usize>>>,
}

/// Whether `(lower, upper)` denotes an empty range. `BTreeMap::range`
/// panics on inverted (or doubly-excluded equal) bounds; the planner
/// can produce such ranges from contradictory restrictions.
fn bounds_are_empty(lower: &Bound<&Datum>, upper: &Bound<&Datum>) -> bool {
    match (lower, upper) {
        (Bound::Included(l), Bound::Included(u)) => l > u,
        (Bound::Included(l), Bound::Excluded(u))
        | (Bound::Excluded(l), Bound::Included(u))
        | (Bound::Excluded(l), Bound::Excluded(u)) => l >= u,
        _ => false,
    }
}

/// Pre-transaction state of one table, saved on its first mutation.
///
/// Appends only need the old row count (rollback trims rows and index
/// postings — O(1) to capture, so bulk loads stay linear); destructive
/// statements (truncate, drop, create over the same name, index
/// builds) save the whole table (`None` = it did not exist).
#[derive(Clone, Debug)]
enum MemSaved {
    RowCount(usize),
    Full(Option<MemTable>),
}

/// Rebuilds every index of a table from its rows. Row-level UPDATE and
/// DELETE shift row ids / change keys; with the whole table journaled
/// anyway (`MemSaved::Full`), a rebuild is the simplest way to keep
/// postings exact.
fn rebuild_indexes(table: &mut MemTable) {
    for (&col, index) in table.indexes.iter_mut() {
        index.clear();
        for (rid, row) in table.rows.iter().enumerate() {
            index.entry(row[col].clone()).or_default().push(rid);
        }
    }
}

/// Rewinds a table to its first `rows` rows, pruning index postings of
/// the trimmed tail.
fn rewind_rows(table: &mut MemTable, rows: usize) {
    table.rows.truncate(rows);
    for index in table.indexes.values_mut() {
        for postings in index.values_mut() {
            postings.retain(|&rid| rid < rows);
        }
        index.retain(|_, postings| !postings.is_empty());
    }
}

/// The original storage representation: everything in RAM, no paging.
///
/// It has no durability, but it *does* honor transaction atomicity so
/// the two backends stay observationally identical through SQL: the
/// first mutation of each table inside a transaction saves rollback
/// state for it ([`MemSaved`], copy-on-first-touch), and abort restores
/// exactly the touched entries. Any number of session transactions may
/// be open at once — one per server session — with at most one active
/// at a time, mirroring the paged engine's model.
#[derive(Clone, Debug, Default)]
pub struct InMemoryBackend {
    tables: BTreeMap<String, MemTable>,
    /// txn id → (table → saved pre-transaction state).
    txns: HashMap<u64, BTreeMap<String, MemSaved>>,
    active: Option<u64>,
    next_txn: u64,
}

impl InMemoryBackend {
    pub fn new() -> InMemoryBackend {
        Self::default()
    }

    fn table(&self, name: &str) -> RqsResult<&MemTable> {
        self.tables
            .get(name)
            .ok_or_else(|| RqsError::UnknownTable(name.to_owned()))
    }

    fn table_mut(&mut self, name: &str) -> RqsResult<&mut MemTable> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| RqsError::UnknownTable(name.to_owned()))
    }

    /// Saves `name`'s row count for rollback (appends) on first touch.
    fn touch_rows(&mut self, name: &str) {
        let Some(id) = self.active else {
            return;
        };
        let Some(touched) = self.txns.get_mut(&id) else {
            return;
        };
        if !touched.contains_key(name) {
            let rows = self.tables.get(name).map_or(0, |t| t.rows.len());
            touched.insert(name.to_owned(), MemSaved::RowCount(rows));
        }
    }

    /// Saves `name`'s whole state for rollback (destructive statements).
    /// An existing row-count baseline is upgraded by rewinding a copy to
    /// it — only appends can have happened since, so that copy *is* the
    /// pre-transaction state.
    fn touch_full(&mut self, name: &str) {
        let Some(id) = self.active else {
            return;
        };
        let Some(touched) = self.txns.get_mut(&id) else {
            return;
        };
        let saved = match touched.get(name) {
            Some(MemSaved::Full(_)) => return,
            Some(MemSaved::RowCount(rows)) => {
                let mut copy = self.tables.get(name).cloned().expect("counted rows");
                rewind_rows(&mut copy, *rows);
                Some(copy)
            }
            None => self.tables.get(name).cloned(),
        };
        touched.insert(name.to_owned(), MemSaved::Full(saved));
    }

    /// Row ids the access path yields for one table: `None` = every row
    /// (no usable index), `Some` = the index-narrowed candidate set.
    fn candidates(&self, name: &str, access: &AccessPath) -> RqsResult<Option<Vec<usize>>> {
        let table = self.table(name)?;
        Ok(match access {
            AccessPath::FullScan => None,
            AccessPath::Nothing => Some(Vec::new()),
            AccessPath::KeyEq(col, key) => table
                .indexes
                .get(col)
                .map(|index| index.get(key).cloned().unwrap_or_default()),
            AccessPath::KeyRange(col, lower, upper) => table.indexes.get(col).map(|index| {
                let (lower, upper) = (lower.as_ref(), upper.as_ref());
                if bounds_are_empty(&lower, &upper) {
                    Vec::new()
                } else {
                    index
                        .range((lower, upper))
                        .flat_map(|(_, rids)| rids.iter().copied())
                        .collect()
                }
            }),
        })
    }

    /// Row ids of the rows that satisfy both the access path and the
    /// predicate, ascending.
    fn matched(
        &self,
        name: &str,
        access: &AccessPath,
        pred: &mut dyn FnMut(&Tuple) -> bool,
    ) -> RqsResult<Vec<usize>> {
        let candidates = self.candidates(name, access)?;
        let table = self.table(name)?;
        let mut hits: Vec<usize> = match candidates {
            Some(rids) => rids
                .into_iter()
                .filter(|&rid| pred(&table.rows[rid]))
                .collect(),
            None => (0..table.rows.len())
                .filter(|&rid| pred(&table.rows[rid]))
                .collect(),
        };
        hits.sort_unstable();
        hits.dedup();
        Ok(hits)
    }

    /// Restores every table a transaction touched, then forgets it.
    fn restore(&mut self, id: u64) {
        let Some(touched) = self.txns.remove(&id) else {
            return;
        };
        for (name, saved) in touched {
            match saved {
                MemSaved::RowCount(rows) => {
                    if let Some(table) = self.tables.get_mut(&name) {
                        rewind_rows(table, rows);
                    }
                }
                MemSaved::Full(Some(table)) => {
                    self.tables.insert(name, table);
                }
                MemSaved::Full(None) => {
                    self.tables.remove(&name);
                }
            }
        }
        if self.active == Some(id) {
            self.active = None;
        }
    }
}

impl StorageBackend for InMemoryBackend {
    fn name(&self) -> &'static str {
        "in-memory"
    }

    fn create_table(&mut self, name: &str, _columns: &[Column]) -> RqsResult<()> {
        if self.tables.contains_key(name) {
            return Err(RqsError::DuplicateTable(name.to_owned()));
        }
        self.touch_full(name);
        self.tables.insert(name.to_owned(), MemTable::default());
        Ok(())
    }

    fn drop_table(&mut self, name: &str) -> RqsResult<()> {
        self.touch_full(name);
        self.tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| RqsError::UnknownTable(name.to_owned()))
    }

    fn truncate(&mut self, name: &str) -> RqsResult<usize> {
        self.table(name)?;
        self.touch_full(name);
        let table = self.table_mut(name)?;
        let removed = table.rows.len();
        table.rows.clear();
        for index in table.indexes.values_mut() {
            index.clear();
        }
        Ok(removed)
    }

    fn begin(&mut self) -> RqsResult<()> {
        if self.active.is_some() {
            return Err(RqsError::Internal("transaction already active".into()));
        }
        self.next_txn += 1;
        let id = self.next_txn;
        self.txns.insert(id, BTreeMap::new());
        self.active = Some(id);
        Ok(())
    }

    fn commit(&mut self) -> RqsResult<()> {
        let Some(id) = self.active.take() else {
            return Err(RqsError::Internal("commit without begin".into()));
        };
        self.txns.remove(&id);
        Ok(())
    }

    fn abort(&mut self) {
        if let Some(id) = self.active {
            self.restore(id);
        }
    }

    fn in_txn(&self) -> bool {
        self.active.is_some()
    }

    fn begin_session(&mut self) -> RqsResult<u64> {
        self.next_txn += 1;
        let id = self.next_txn;
        self.txns.insert(id, BTreeMap::new());
        Ok(id)
    }

    fn resume_session(&mut self, id: u64) -> RqsResult<()> {
        if !self.txns.contains_key(&id) {
            return Err(RqsError::Internal(format!(
                "resume of unknown transaction {id}"
            )));
        }
        if self.active.is_some() && self.active != Some(id) {
            return Err(RqsError::Internal(
                "another transaction is active; suspend it first".into(),
            ));
        }
        self.active = Some(id);
        Ok(())
    }

    fn suspend_session(&mut self) {
        self.active = None;
    }

    fn commit_session(&mut self, id: u64) -> RqsResult<()> {
        self.txns.remove(&id);
        if self.active == Some(id) {
            self.active = None;
        }
        Ok(())
    }

    fn abort_session(&mut self, id: u64) {
        self.restore(id);
    }

    fn insert(&mut self, name: &str, tuple: Tuple) -> RqsResult<()> {
        // Enforce the paged engine's record-size cap so the two backends
        // stay observationally identical through SQL (a tuple that
        // cannot live on one 4 KiB page is rejected everywhere).
        let encoded = encoded_tuple_len(&tuple);
        if encoded > storage::page::Page::max_record_len() {
            return Err(StorageError::RecordTooLarge(encoded).into());
        }
        self.table(name)?;
        self.touch_rows(name);
        let table = self.table_mut(name)?;
        let rid = table.rows.len();
        for (&col, index) in table.indexes.iter_mut() {
            index.entry(tuple[col].clone()).or_default().push(rid);
        }
        table.rows.push(tuple);
        Ok(())
    }

    fn row_count(&self, name: &str) -> RqsResult<usize> {
        Ok(self.table(name)?.rows.len())
    }

    fn scan(&self, name: &str) -> RqsResult<Vec<Tuple>> {
        Ok(self.table(name)?.rows.clone())
    }

    fn for_each(&self, name: &str, f: &mut dyn FnMut(&Tuple)) -> RqsResult<()> {
        for row in &self.table(name)?.rows {
            f(row);
        }
        Ok(())
    }

    fn create_index(&mut self, name: &str, col: usize) -> RqsResult<()> {
        self.table(name)?;
        self.touch_full(name);
        let table = self.table_mut(name)?;
        let mut index: BTreeMap<Datum, Vec<usize>> = BTreeMap::new();
        for (rid, row) in table.rows.iter().enumerate() {
            index.entry(row[col].clone()).or_default().push(rid);
        }
        table.indexes.insert(col, index);
        Ok(())
    }

    fn has_index(&self, name: &str, col: usize) -> bool {
        self.tables
            .get(name)
            .is_some_and(|t| t.indexes.contains_key(&col))
    }

    fn index_lookup(&self, name: &str, col: usize, key: &Datum) -> RqsResult<Option<Vec<Tuple>>> {
        let table = self.table(name)?;
        let Some(index) = table.indexes.get(&col) else {
            return Ok(None);
        };
        let rids = index.get(key).map(Vec::as_slice).unwrap_or(&[]);
        Ok(Some(
            rids.iter().map(|&rid| table.rows[rid].clone()).collect(),
        ))
    }

    fn index_range(
        &self,
        name: &str,
        col: usize,
        lower: Bound<&Datum>,
        upper: Bound<&Datum>,
    ) -> RqsResult<Option<Vec<Tuple>>> {
        let table = self.table(name)?;
        let Some(index) = table.indexes.get(&col) else {
            return Ok(None);
        };
        if bounds_are_empty(&lower, &upper) {
            return Ok(Some(Vec::new()));
        }
        let mut out = Vec::new();
        for rids in index.range((lower, upper)).map(|(_, v)| v) {
            out.extend(rids.iter().map(|&rid| table.rows[rid].clone()));
        }
        Ok(Some(out))
    }

    fn delete_where(
        &mut self,
        name: &str,
        access: &AccessPath,
        pred: &mut dyn FnMut(&Tuple) -> bool,
    ) -> RqsResult<usize> {
        let doomed = self.matched(name, access, pred)?;
        if doomed.is_empty() {
            return Ok(0);
        }
        self.touch_full(name);
        let table = self.table_mut(name)?;
        let doomed_set: std::collections::HashSet<usize> = doomed.iter().copied().collect();
        let mut rid = 0;
        table.rows.retain(|_| {
            let keep = !doomed_set.contains(&rid);
            rid += 1;
            keep
        });
        rebuild_indexes(table);
        Ok(doomed.len())
    }

    fn update_where(
        &mut self,
        name: &str,
        access: &AccessPath,
        pred: &mut dyn FnMut(&Tuple) -> bool,
        apply: &mut dyn FnMut(&Tuple) -> Tuple,
    ) -> RqsResult<usize> {
        let matched = self.matched(name, access, pred)?;
        if matched.is_empty() {
            return Ok(0);
        }
        // Compute every replacement (and enforce the paged engine's
        // record-size cap) before mutating, so an oversized row rejects
        // the statement without partial effects.
        let table = self.table(name)?;
        let mut replacements = Vec::with_capacity(matched.len());
        for &rid in &matched {
            let new = apply(&table.rows[rid]);
            let encoded = encoded_tuple_len(&new);
            if encoded > storage::page::Page::max_record_len() {
                return Err(StorageError::RecordTooLarge(encoded).into());
            }
            replacements.push((rid, new));
        }
        self.touch_full(name);
        let table = self.table_mut(name)?;
        for (rid, new) in replacements {
            table.rows[rid] = new;
        }
        rebuild_indexes(table);
        Ok(matched.len())
    }

    fn stats(&self) -> PoolStats {
        PoolStats::default()
    }

    fn contains(&self, name: &str, cols: &[usize], values: &[Datum]) -> RqsResult<bool> {
        Ok(self
            .table(name)?
            .rows
            .iter()
            .any(|row| cols.iter().zip(values).all(|(&c, v)| &row[c] == v)))
    }
}

// ---------------------------------------------------------------------------
// Paged backend
// ---------------------------------------------------------------------------

fn to_col_type(ty: crate::catalog::ColumnType) -> ColType {
    match ty {
        crate::catalog::ColumnType::Int => ColType::Int,
        crate::catalog::ColumnType::Text => ColType::Text,
    }
}

pub(crate) fn from_col_type(ty: ColType) -> crate::catalog::ColumnType {
    match ty {
        ColType::Int => crate::catalog::ColumnType::Int,
        ColType::Text => crate::catalog::ColumnType::Text,
    }
}

/// The paged storage engine behind the backend trait.
pub struct PagedBackend {
    engine: StorageEngine,
    /// Per-row lock acquisition callback (see [`RowLockHook`]),
    /// installed by the shared server for the span of one DML
    /// statement and cleared afterwards.
    row_lock_hook: Option<RowLockHook>,
}

/// Packs a rid into the stable `u64` row key the lock manager indexes
/// by: page id in the high bits, slot in the low 16. In-place updates
/// never change a row's rid (relocations do, but the lock on the old
/// rid is what serializes the relocating statement).
fn rid_key(rid: storage::heap::Rid) -> u64 {
    ((rid.page as u64) << 16) | rid.slot as u64
}

// Compile-time proof that the storage rewrite holds: both backends (and
// therefore `Box<dyn StorageBackend>`) cross thread boundaries and can
// be read from several at once, which is what lets the `server` crate
// share one database among sessions and run snapshot SELECTs in
// parallel.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PagedBackend>();
    assert_send_sync::<InMemoryBackend>();
    assert_send_sync::<Box<dyn StorageBackend>>();
};

impl PagedBackend {
    /// Anonymous in-memory paged database (pages + buffer pool, no file).
    pub fn in_memory(pool_pages: usize) -> RqsResult<PagedBackend> {
        Ok(PagedBackend {
            engine: StorageEngine::in_memory(pool_pages)?,
            row_lock_hook: None,
        })
    }

    /// File-backed paged database (creates the file when missing).
    pub fn open(path: &Path, pool_pages: usize) -> RqsResult<PagedBackend> {
        Ok(PagedBackend {
            engine: StorageEngine::open(path, pool_pages)?,
            row_lock_hook: None,
        })
    }

    /// File-backed paged database whose durable writes are charged
    /// against `fault` — the crash-recovery test harness.
    pub fn open_with_fault(
        path: &Path,
        pool_pages: usize,
        fault: Fault,
    ) -> RqsResult<PagedBackend> {
        Ok(PagedBackend {
            engine: StorageEngine::open_with_fault(path, pool_pages, fault)?,
            row_lock_hook: None,
        })
    }

    /// Runs the installed row-lock hook (if any) for one rid.
    fn lock_row(&self, name: &str, rid: storage::heap::Rid) -> RqsResult<()> {
        match &self.row_lock_hook {
            Some(hook) => hook(name, rid_key(rid)),
            None => Ok(()),
        }
    }

    pub fn engine(&self) -> &StorageEngine {
        &self.engine
    }

    /// Candidate `(rid, tuple)` pairs for one access path; falls back to
    /// a full scan when the named index is gone.
    fn candidates_rids(
        &self,
        name: &str,
        access: &AccessPath,
    ) -> RqsResult<Vec<(storage::heap::Rid, Tuple)>> {
        Ok(match access {
            AccessPath::FullScan => self.engine.scan_rids(name)?,
            AccessPath::Nothing => {
                self.engine.table(name)?;
                Vec::new()
            }
            AccessPath::KeyEq(col, key) => match self.engine.index_lookup_rids(name, *col, key)? {
                Some(hits) => hits,
                None => self.engine.scan_rids(name)?,
            },
            AccessPath::KeyRange(col, lower, upper) => {
                let (lower, upper) = (lower.as_ref(), upper.as_ref());
                if bounds_are_empty(&lower, &upper) && self.engine.has_index(name, *col) {
                    Vec::new()
                } else {
                    match self.engine.index_range_rids(name, *col, lower, upper)? {
                        Some(hits) => hits,
                        None => self.engine.scan_rids(name)?,
                    }
                }
            }
        })
    }
}

impl StorageBackend for PagedBackend {
    fn name(&self) -> &'static str {
        "paged"
    }

    fn create_table(&mut self, name: &str, columns: &[Column]) -> RqsResult<()> {
        let cols: Vec<(String, ColType)> = columns
            .iter()
            .map(|c| (c.name.clone(), to_col_type(c.ty)))
            .collect();
        Ok(self.engine.create_table(name, &cols)?)
    }

    fn drop_table(&mut self, name: &str) -> RqsResult<()> {
        Ok(self.engine.drop_table(name)?)
    }

    fn truncate(&mut self, name: &str) -> RqsResult<usize> {
        let removed = self.engine.row_count(name)?;
        self.engine.truncate(name)?;
        Ok(removed)
    }

    fn insert(&mut self, name: &str, tuple: Tuple) -> RqsResult<()> {
        let rid = self.engine.insert(name, &tuple)?;
        // A fresh rid cannot be held by anyone else, but locking it
        // keeps the row pinned to this transaction until commit (a
        // concurrent statement that sees the uncommitted tuple in its
        // candidate set conflicts here instead of mutating it).
        self.lock_row(name, rid)?;
        Ok(())
    }

    fn row_count(&self, name: &str) -> RqsResult<usize> {
        Ok(self.engine.row_count(name)?)
    }

    fn scan(&self, name: &str) -> RqsResult<Vec<Tuple>> {
        Ok(self.engine.scan(name)?)
    }

    fn for_each(&self, name: &str, f: &mut dyn FnMut(&Tuple)) -> RqsResult<()> {
        Ok(self.engine.for_each(name, f)?)
    }

    fn create_index(&mut self, name: &str, col: usize) -> RqsResult<()> {
        Ok(self.engine.create_index(name, col)?)
    }

    fn has_index(&self, name: &str, col: usize) -> bool {
        self.engine.has_index(name, col)
    }

    fn index_lookup(&self, name: &str, col: usize, key: &Datum) -> RqsResult<Option<Vec<Tuple>>> {
        Ok(self.engine.index_lookup(name, col, key)?)
    }

    fn index_range(
        &self,
        name: &str,
        col: usize,
        lower: Bound<&Datum>,
        upper: Bound<&Datum>,
    ) -> RqsResult<Option<Vec<Tuple>>> {
        if bounds_are_empty(&lower, &upper) && self.engine.has_index(name, col) {
            return Ok(Some(Vec::new()));
        }
        Ok(self.engine.index_range(name, col, lower, upper)?)
    }

    fn stats(&self) -> PoolStats {
        self.engine.pool_stats()
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.engine.metrics()
    }

    fn histograms(&self) -> HistogramsSnapshot {
        self.engine.histograms()
    }

    fn flush(&self) -> RqsResult<()> {
        Ok(self.engine.flush()?)
    }

    fn begin(&mut self) -> RqsResult<()> {
        self.engine.begin()?;
        Ok(())
    }

    fn commit(&mut self) -> RqsResult<()> {
        Ok(self.engine.commit()?)
    }

    fn abort(&mut self) {
        self.engine.abort();
    }

    fn in_txn(&self) -> bool {
        self.engine.in_txn()
    }

    fn begin_session(&mut self) -> RqsResult<u64> {
        let id = self.engine.begin()?;
        self.engine.suspend();
        Ok(id)
    }

    fn resume_session(&mut self, id: u64) -> RqsResult<()> {
        Ok(self.engine.resume(id)?)
    }

    fn suspend_session(&mut self) {
        self.engine.suspend();
    }

    fn commit_session(&mut self, id: u64) -> RqsResult<()> {
        Ok(self.engine.commit_txn(id)?)
    }

    fn abort_session(&mut self, id: u64) {
        self.engine.abort_txn(id);
    }

    fn persist_constraints(
        &mut self,
        name: &str,
        constraints: &[TableConstraint],
    ) -> RqsResult<()> {
        let specs: Vec<String> = constraints.iter().map(TableConstraint::to_spec).collect();
        Ok(self.engine.set_constraints(name, &specs)?)
    }

    fn stored_constraints(&self, name: &str) -> RqsResult<Vec<TableConstraint>> {
        self.engine
            .constraints(name)?
            .iter()
            .map(|spec| TableConstraint::parse_spec(spec))
            .collect()
    }

    fn checkpoint(&self) -> RqsResult<()> {
        Ok(self.engine.checkpoint()?)
    }

    fn crash(self: Box<Self>) {
        self.engine.simulate_crash();
    }

    fn supports_row_locks(&self) -> bool {
        true
    }

    fn set_row_lock_hook(&mut self, hook: Option<RowLockHook>) {
        self.row_lock_hook = hook;
    }

    fn supports_snapshot_reads(&self) -> bool {
        self.engine.snapshot_reads_enabled()
    }

    fn set_snapshot_reads(&mut self, on: bool) {
        self.engine.set_snapshot_reads(on);
    }

    fn open_statement_snapshot(&self) {
        self.engine.open_statement_snapshot();
    }

    fn close_statement_snapshot(&self) {
        self.engine.close_statement_snapshot();
    }

    fn set_constraint_probe(&self, on: bool) {
        self.engine.set_constraint_probe(on);
    }

    fn delete_where(
        &mut self,
        name: &str,
        access: &AccessPath,
        pred: &mut dyn FnMut(&Tuple) -> bool,
    ) -> RqsResult<usize> {
        let doomed: Vec<storage::heap::Rid> = self
            .candidates_rids(name, access)?
            .into_iter()
            .filter(|(_, tuple)| pred(tuple))
            .map(|(rid, _)| rid)
            .collect();
        // Lock every doomed row before mutating any of them: a
        // conflict aborts the statement with nothing to undo.
        for &rid in &doomed {
            self.lock_row(name, rid)?;
        }
        Ok(self.engine.delete_rows(name, &doomed)?)
    }

    fn update_where(
        &mut self,
        name: &str,
        access: &AccessPath,
        pred: &mut dyn FnMut(&Tuple) -> bool,
        apply: &mut dyn FnMut(&Tuple) -> Tuple,
    ) -> RqsResult<usize> {
        let updates: Vec<(storage::heap::Rid, Tuple)> = self
            .candidates_rids(name, access)?
            .into_iter()
            .filter(|(_, tuple)| pred(tuple))
            .map(|(rid, tuple)| (rid, apply(&tuple)))
            .collect();
        // Lock every matched row before rewriting any of them.
        for (rid, _) in &updates {
            self.lock_row(name, *rid)?;
        }
        Ok(self.engine.update_rows(name, &updates)?)
    }

    fn contains(&self, name: &str, cols: &[usize], values: &[Datum]) -> RqsResult<bool> {
        Ok(self.engine.contains(name, cols, values)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ColumnType;

    fn columns() -> Vec<Column> {
        vec![
            Column {
                name: "a".into(),
                ty: ColumnType::Int,
            },
            Column {
                name: "b".into(),
                ty: ColumnType::Text,
            },
        ]
    }

    fn exercise(backend: &mut dyn StorageBackend) {
        backend.create_table("t", &columns()).unwrap();
        assert!(matches!(
            backend.create_table("t", &columns()),
            Err(RqsError::DuplicateTable(_))
        ));
        for i in 0..200i64 {
            backend
                .insert("t", vec![Datum::Int(i % 20), Datum::text(&format!("v{i}"))])
                .unwrap();
        }
        assert_eq!(backend.row_count("t").unwrap(), 200);
        assert_eq!(backend.scan("t").unwrap().len(), 200);
        assert!(backend
            .index_lookup("t", 0, &Datum::Int(3))
            .unwrap()
            .is_none());
        backend.create_index("t", 0).unwrap();
        assert!(backend.has_index("t", 0));
        assert!(!backend.has_index("t", 1));
        let hits = backend
            .index_lookup("t", 0, &Datum::Int(3))
            .unwrap()
            .unwrap();
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|t| t[0] == Datum::Int(3)));
        assert_eq!(backend.truncate("t").unwrap(), 200);
        assert_eq!(backend.scan("t").unwrap().len(), 0);
        assert_eq!(
            backend
                .index_lookup("t", 0, &Datum::Int(3))
                .unwrap()
                .unwrap(),
            Vec::<Tuple>::new()
        );
        backend.drop_table("t").unwrap();
        assert!(backend.scan("t").is_err());
    }

    /// DML contract both backends must honor identically: access paths
    /// narrow candidates, predicates select rows, indexes stay exact.
    fn exercise_dml(backend: &mut dyn StorageBackend) {
        backend.create_table("d", &columns()).unwrap();
        for i in 0..100i64 {
            backend
                .insert("d", vec![Datum::Int(i % 10), Datum::text(&format!("v{i}"))])
                .unwrap();
        }
        backend.create_index("d", 0).unwrap();
        // Point-indexed delete.
        let removed = backend
            .delete_where("d", &AccessPath::KeyEq(0, Datum::Int(3)), &mut |_| true)
            .unwrap();
        assert_eq!(removed, 10);
        // Predicate narrows below the access path.
        let removed = backend
            .delete_where("d", &AccessPath::KeyEq(0, Datum::Int(4)), &mut |t| {
                t[1] == Datum::text("v14")
            })
            .unwrap();
        assert_eq!(removed, 1);
        // Range-indexed update rewrites the indexed column itself.
        let changed = backend
            .update_where(
                "d",
                &AccessPath::KeyRange(0, Bound::Included(Datum::Int(8)), Bound::Unbounded),
                &mut |_| true,
                &mut |t| vec![Datum::Int(88), t[1].clone()],
            )
            .unwrap();
        assert_eq!(changed, 20);
        assert_eq!(backend.row_count("d").unwrap(), 89);
        // Index agreement after the churn.
        assert_eq!(
            backend
                .index_lookup("d", 0, &Datum::Int(3))
                .unwrap()
                .unwrap(),
            Vec::<Tuple>::new()
        );
        assert_eq!(
            backend
                .index_lookup("d", 0, &Datum::Int(4))
                .unwrap()
                .unwrap()
                .len(),
            9
        );
        assert_eq!(
            backend
                .index_lookup("d", 0, &Datum::Int(88))
                .unwrap()
                .unwrap()
                .len(),
            20
        );
        assert!(backend
            .index_lookup("d", 0, &Datum::Int(8))
            .unwrap()
            .unwrap()
            .is_empty());
        // Nothing path touches nothing; unknown tables error.
        assert_eq!(
            backend
                .delete_where("d", &AccessPath::Nothing, &mut |_| true)
                .unwrap(),
            0
        );
        assert!(backend
            .delete_where("nosuch", &AccessPath::FullScan, &mut |_| true)
            .is_err());
        // Full-scan update with no index on the touched column.
        let changed = backend
            .update_where(
                "d",
                &AccessPath::FullScan,
                &mut |t| t[0] == Datum::Int(5),
                &mut |t| vec![t[0].clone(), Datum::text("five")],
            )
            .unwrap();
        assert_eq!(changed, 10);
        let fives = backend
            .index_lookup("d", 0, &Datum::Int(5))
            .unwrap()
            .unwrap();
        assert!(fives.iter().all(|t| t[1] == Datum::text("five")));
        backend.drop_table("d").unwrap();
    }

    #[test]
    fn in_memory_backend_contract() {
        let mut backend = InMemoryBackend::new();
        exercise(&mut backend);
        exercise_dml(&mut backend);
        assert_eq!(backend.stats(), PoolStats::default());
    }

    #[test]
    fn paged_backend_contract() {
        let mut backend = PagedBackend::in_memory(8).unwrap();
        exercise(&mut backend);
        exercise_dml(&mut backend);
        let stats = backend.stats();
        assert!(
            stats.page_reads > 0,
            "paged backend must fault pages: {stats:?}"
        );
    }
}

//! A miniature relational query system (RQS), reachable through SQL.
//!
//! The 1984 paper couples its Prolog front-end to "a relational DBMS
//! accessible through SQL" and deliberately treats it as an independent
//! black box. This crate is that black box, built from scratch:
//!
//! * a [`catalog`] of tables with typed columns, tuple storage and
//!   secondary indexes;
//! * enforcement of the three integrity-constraint families the paper
//!   relies on (value bounds, keys/functional dependencies, foreign keys);
//! * a [`sql`] front: lexer, parser and AST for the conjunctive
//!   `SELECT … FROM … WHERE` dialect the front-end generates, plus
//!   `CREATE TABLE`, `INSERT`, `UNION`, and `NOT IN` subqueries;
//! * a [`plan`]ner that orders joins greedily and pushes restrictions down
//!   to scans (the paper leaves goal-reordering optimization "to the
//!   existing query processor of the DBMS" — this is it);
//! * an [`exec`]utor with hash joins for equijoins and nested loops for
//!   inequality joins, instrumented with [`exec::QueryMetrics`] so the
//!   benefit of front-end simplification is measurable.
//!
//! Crucially, this crate depends on nothing else in the workspace: the
//! only connection between front-end and DBMS is SQL text, exactly as in
//! the paper.
//!
//! ```
//! use rqs::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE empl (eno INT, nam TEXT, sal INT, dno INT)").unwrap();
//! db.execute("INSERT INTO empl VALUES (1, 'smiley', 50000, 10)").unwrap();
//! db.execute("INSERT INTO empl VALUES (2, 'jones', 30000, 10)").unwrap();
//! let result = db.execute("SELECT v1.nam FROM empl v1 WHERE v1.sal < 40000").unwrap();
//! assert_eq!(result.rows.len(), 1);
//! assert_eq!(result.rows[0][0].to_string(), "'jones'");
//! ```

pub mod catalog;
pub mod database;
pub mod error;
pub mod exec;
pub mod plan;
pub mod sql;
pub mod value;

pub use catalog::{Catalog, Column, ColumnType, Table, TableConstraint};
pub use database::{Database, QueryResult};
pub use error::{RqsError, RqsResult};
pub use exec::QueryMetrics;
pub use value::Datum;

//! A miniature relational query system (RQS), reachable through SQL.
//!
//! The 1984 paper couples its Prolog front-end to "a relational DBMS
//! accessible through SQL" and deliberately treats it as an independent
//! black box. This crate is that black box, built from scratch:
//!
//! * a [`catalog`] of tables with typed columns, tuple storage and
//!   secondary indexes;
//! * enforcement of the three integrity-constraint families the paper
//!   relies on (value bounds, keys/functional dependencies, foreign keys);
//! * a [`sql`] front: lexer, parser and AST for the conjunctive
//!   `SELECT … FROM … WHERE` dialect the front-end generates, plus
//!   `CREATE TABLE`, `INSERT`, `UNION`, and `NOT IN` subqueries;
//! * a [`plan`]ner that orders joins greedily and pushes restrictions down
//!   to scans (the paper leaves goal-reordering optimization "to the
//!   existing query processor of the DBMS" — this is it);
//! * an [`exec`]utor with hash joins for equijoins and nested loops for
//!   inequality joins, instrumented with [`exec::QueryMetrics`] so the
//!   benefit of front-end simplification is measurable.
//!
//! # Storage architecture
//!
//! Physical row storage is pluggable behind the
//! [`backend::StorageBackend`] trait; the [`Catalog`] holds only schemas
//! and constraints, and the planner/executor read rows through a
//! [`backend::Snapshot`] pairing the two. Two backends ship:
//!
//! * **In-memory** ([`Database::new`]) — a `Vec<Tuple>` per table with
//!   `BTreeMap` secondary indexes. No paging, no I/O accounting.
//! * **Paged** ([`Database::paged`], [`Database::open_paged`]) — the
//!   `storage` crate's engine: tuples serialized onto fixed-size (4 KiB)
//!   slotted heap pages, fetched through a pinned/unpinned buffer pool
//!   with clock eviction over an in-memory or file-backed pager;
//!   secondary indexes are B+-trees keyed on [`Datum`]; the schema and
//!   integrity constraints persist as rows of four bootstrap heaps
//!   (`system_tables`, `system_columns`, `system_indexes`,
//!   `system_constraints`) at fixed page ids, from which
//!   [`Database::open_paged`] rebuilds the catalog on reopen; and every
//!   mutating SQL statement commits through a write-ahead log, so
//!   committed statements survive crashes ([`Database::open_paged`]
//!   replays the log before bootstrapping) and failed statements roll
//!   back completely — heap rows, index postings and catalog mutations
//!   alike.
//!
//! On the paged backend every scan and index lookup goes through the
//! buffer pool, so [`exec::QueryMetrics::page_reads`] and
//! [`exec::QueryMetrics::buffer_hits`] report real page traffic — the
//! paper's actual cost model — and DML statements additionally report
//! [`exec::QueryMetrics::wal_appends`]/[`exec::QueryMetrics::wal_bytes`],
//! the price of durability. The two backends are observationally
//! identical through SQL (enforced by `tests/backend_differential.rs`
//! and the crash harness in `tests/crash_recovery.rs`); they differ
//! only in physical cost. Both are `Send` and support any number of
//! open session-scoped transactions (one active at a time), which is
//! what the `server` crate builds its concurrent shared-database
//! sessions on — isolation between sessions lives there, in a
//! table-level two-phase lock manager.
//!
//! Crucially, this crate depends on nothing else in the workspace above
//! the storage layer: the only connection between front-end and DBMS is
//! SQL text, exactly as in the paper.
//!
//! ```
//! use rqs::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE empl (eno INT, nam TEXT, sal INT, dno INT)").unwrap();
//! db.execute("INSERT INTO empl VALUES (1, 'smiley', 50000, 10)").unwrap();
//! db.execute("INSERT INTO empl VALUES (2, 'jones', 30000, 10)").unwrap();
//! let result = db.execute("SELECT v1.nam FROM empl v1 WHERE v1.sal < 40000").unwrap();
//! assert_eq!(result.rows.len(), 1);
//! assert_eq!(result.rows[0][0].to_string(), "'jones'");
//! ```

pub mod backend;
pub mod catalog;
pub mod database;
pub mod dml;
pub mod error;
pub mod exec;
pub mod plan;
pub mod sql;
pub mod value;

pub use backend::{
    AccessPath, InMemoryBackend, PagedBackend, RowLockHook, Snapshot, StorageBackend,
};
pub use catalog::{Catalog, Column, ColumnType, Table, TableConstraint};
pub use database::{Database, QueryResult, Trace, TraceSpan};
pub use error::{RqsError, RqsResult};
pub use exec::QueryMetrics;
pub use value::Datum;

//! Catalog: table schemas and integrity-constraint enforcement.
//!
//! The paper assumes "the use of an existing database system" that already
//! maintains value bounds, keys and referential integrity — the semantic
//! knowledge its optimizer exploits. This module holds that system's
//! *logical* layer: schemas and constraints. Physical row storage lives
//! behind [`crate::backend::StorageBackend`]; the constraint checkers
//! here read through it, so the same enforcement applies to the
//! in-memory and the paged engine alike.

use crate::backend::StorageBackend;
use crate::error::{RqsError, RqsResult};
use crate::value::{Datum, Tuple};
use std::collections::BTreeMap;
use std::fmt;

/// Column type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ColumnType {
    Int,
    Text,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::Int => f.write_str("INT"),
            ColumnType::Text => f.write_str("TEXT"),
        }
    }
}

/// A column: name and type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Column {
    pub name: String,
    pub ty: ColumnType,
}

/// Table-level integrity constraints, enforced on insert.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TableConstraint {
    /// Values of the column must lie within `[lo, hi]`.
    ValueBound { column: String, lo: i64, hi: i64 },
    /// The column set is a key (no two rows agree on all of them).
    Key { columns: Vec<String> },
    /// Values of `columns` must appear as `parent_columns` values in
    /// `parent_table` (referential integrity).
    ForeignKey {
        columns: Vec<String>,
        parent_table: String,
        parent_columns: Vec<String>,
    },
}

impl TableConstraint {
    /// Serializes the constraint to the compact text spec persisted in
    /// the paged engine's `system_constraints` catalog. Column names
    /// are SQL identifiers (no spaces or commas), so space- and
    /// comma-separated fields are unambiguous.
    pub fn to_spec(&self) -> String {
        match self {
            TableConstraint::ValueBound { column, lo, hi } => format!("bound {column} {lo} {hi}"),
            TableConstraint::Key { columns } => format!("key {}", columns.join(",")),
            TableConstraint::ForeignKey {
                columns,
                parent_table,
                parent_columns,
            } => format!(
                "fk {} {parent_table} {}",
                columns.join(","),
                parent_columns.join(",")
            ),
        }
    }

    /// Parses a spec produced by [`TableConstraint::to_spec`].
    pub fn parse_spec(spec: &str) -> RqsResult<TableConstraint> {
        let corrupt = || RqsError::Internal(format!("malformed constraint spec: {spec:?}"));
        let fields: Vec<&str> = spec.split(' ').collect();
        let split_cols = |s: &str| -> Vec<String> { s.split(',').map(str::to_owned).collect() };
        match fields.as_slice() {
            ["bound", column, lo, hi] => Ok(TableConstraint::ValueBound {
                column: (*column).to_owned(),
                lo: lo.parse().map_err(|_| corrupt())?,
                hi: hi.parse().map_err(|_| corrupt())?,
            }),
            ["key", columns] => Ok(TableConstraint::Key {
                columns: split_cols(columns),
            }),
            ["fk", columns, parent, parent_columns] => Ok(TableConstraint::ForeignKey {
                columns: split_cols(columns),
                parent_table: (*parent).to_owned(),
                parent_columns: split_cols(parent_columns),
            }),
            _ => Err(corrupt()),
        }
    }
}

/// A table schema: name, typed columns, constraints. Rows live in the
/// storage backend.
#[derive(Clone, Debug)]
pub struct Table {
    pub name: String,
    pub columns: Vec<Column>,
    pub constraints: Vec<TableConstraint>,
}

impl Table {
    pub fn new(name: &str, columns: Vec<Column>) -> Table {
        Table {
            name: name.to_owned(),
            columns,
            constraints: Vec::new(),
        }
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Type-checks a tuple against the schema.
    pub fn typecheck(&self, tuple: &Tuple) -> RqsResult<()> {
        if tuple.len() != self.columns.len() {
            return Err(RqsError::Type(format!(
                "{} expects {} values, got {}",
                self.name,
                self.columns.len(),
                tuple.len()
            )));
        }
        for (col, value) in self.columns.iter().zip(tuple) {
            let ok = matches!(
                (col.ty, value),
                (ColumnType::Int, Datum::Int(_)) | (ColumnType::Text, Datum::Text(_))
            );
            if !ok {
                return Err(RqsError::Type(format!(
                    "column {}.{} is {}, got {value}",
                    self.name, col.name, col.ty
                )));
            }
        }
        Ok(())
    }
}

/// The catalog of all table schemas.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn create_table(&mut self, table: Table) -> RqsResult<()> {
        if self.tables.contains_key(&table.name) {
            return Err(RqsError::DuplicateTable(table.name));
        }
        self.tables.insert(table.name.clone(), table);
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str) -> RqsResult<()> {
        self.tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| RqsError::UnknownTable(name.to_owned()))
    }

    pub fn table(&self, name: &str) -> RqsResult<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| RqsError::UnknownTable(name.to_owned()))
    }

    pub fn table_mut(&mut self, name: &str) -> RqsResult<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| RqsError::UnknownTable(name.to_owned()))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }
}

pub(crate) fn resolve_columns(
    table: &Table,
    names: &[String],
    what: &str,
) -> RqsResult<Vec<usize>> {
    names
        .iter()
        .map(|c| {
            table
                .column_index(c)
                .ok_or_else(|| RqsError::Internal(format!("{what} on missing column {c}")))
        })
        .collect()
}

pub(crate) fn check_value_bound(
    table: &Table,
    tuple: &Tuple,
    column: &str,
    lo: i64,
    hi: i64,
) -> RqsResult<()> {
    let col = table
        .column_index(column)
        .ok_or_else(|| RqsError::Internal(format!("bound on missing column {column}")))?;
    let v = tuple[col]
        .as_int()
        .ok_or_else(|| RqsError::Type(format!("value bound on non-integer column {column}")))?;
    if v < lo || v > hi {
        return Err(RqsError::ConstraintViolation(format!(
            "{}.{column} = {v} outside [{lo}, {hi}]",
            table.name
        )));
    }
    Ok(())
}

/// Checks every constraint of `table_name` against one candidate tuple,
/// reading existing rows through the backend. Called before every
/// checked insert.
pub(crate) fn check_insert(
    catalog: &Catalog,
    backend: &dyn StorageBackend,
    table_name: &str,
    tuple: &Tuple,
) -> RqsResult<()> {
    let table = catalog.table(table_name)?;
    table.typecheck(tuple)?;
    for c in &table.constraints {
        match c {
            TableConstraint::ValueBound { column, lo, hi } => {
                check_value_bound(table, tuple, column, *lo, *hi)?;
            }
            TableConstraint::Key { columns } => {
                let cols = resolve_columns(table, columns, "key")?;
                // Use an index when one covers a single-column key. The
                // lookup may still decline (`None`) — e.g. while MVCC
                // version metadata makes raw index postings unsafe — in
                // which case the scan probe decides.
                let indexed = if cols.len() == 1 && backend.has_index(table_name, cols[0]) {
                    backend.index_lookup(table_name, cols[0], &tuple[cols[0]])?
                } else {
                    None
                };
                let dup = match indexed {
                    Some(rows) => !rows.is_empty(),
                    None => {
                        let values: Vec<Datum> = cols.iter().map(|&c| tuple[c].clone()).collect();
                        backend.contains(table_name, &cols, &values)?
                    }
                };
                if dup {
                    return Err(RqsError::ConstraintViolation(format!(
                        "duplicate key {columns:?} in {table_name}"
                    )));
                }
            }
            TableConstraint::ForeignKey {
                columns,
                parent_table,
                parent_columns,
            } => {
                let child_cols = resolve_columns(table, columns, "fk")?;
                let parent = catalog.table(parent_table)?;
                let parent_cols = resolve_columns(parent, parent_columns, "fk")?;
                let values: Vec<Datum> = child_cols.iter().map(|&c| tuple[c].clone()).collect();
                // Probe the parent through its index when one covers a
                // single-column reference, else with an early-exit scan
                // (also the fallback when the lookup declines — see the
                // key probe above).
                let indexed =
                    if parent_cols.len() == 1 && backend.has_index(parent_table, parent_cols[0]) {
                        backend.index_lookup(parent_table, parent_cols[0], &values[0])?
                    } else {
                        None
                    };
                let found = match indexed {
                    Some(rows) => !rows.is_empty(),
                    None => backend.contains(parent_table, &parent_cols, &values)?,
                };
                if !found {
                    return Err(RqsError::ConstraintViolation(format!(
                        "{table_name}{columns:?} -> {parent_table}{parent_columns:?}: \
                         no parent for {:?}",
                        child_cols
                            .iter()
                            .map(|&c| tuple[c].clone())
                            .collect::<Vec<_>>()
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Re-validates every constraint of every table against stored data.
/// Needed after bulk loads through `Database::insert_unchecked`, which
/// exist because cyclic foreign keys (the paper's `empdep` has
/// `empl.dno → dept.dno` *and* `dept.mgr → empl.eno`) make strict
/// insert-time checking impossible.
pub(crate) fn validate_all(catalog: &Catalog, backend: &dyn StorageBackend) -> RqsResult<()> {
    for table in catalog.tables.values() {
        if table.constraints.is_empty() {
            continue;
        }
        let rows = backend.scan(&table.name)?;
        for c in &table.constraints {
            match c {
                TableConstraint::ValueBound { column, lo, hi } => {
                    for row in &rows {
                        check_value_bound(table, row, column, *lo, *hi)?;
                    }
                }
                TableConstraint::Key { columns } => {
                    let cols = resolve_columns(table, columns, "key")?;
                    let mut seen = std::collections::HashSet::new();
                    for row in &rows {
                        let key: Vec<&Datum> = cols.iter().map(|&c| &row[c]).collect();
                        if !seen.insert(key) {
                            return Err(RqsError::ConstraintViolation(format!(
                                "duplicate key {columns:?} in {}",
                                table.name
                            )));
                        }
                    }
                }
                TableConstraint::ForeignKey {
                    columns,
                    parent_table,
                    parent_columns,
                } => {
                    let child_cols = resolve_columns(table, columns, "fk")?;
                    let parent = catalog.table(parent_table)?;
                    let parent_cols = resolve_columns(parent, parent_columns, "fk")?;
                    let parent_rows = backend.scan(parent_table)?;
                    let parent_keys: std::collections::HashSet<Vec<&Datum>> = parent_rows
                        .iter()
                        .map(|r| parent_cols.iter().map(|&c| &r[c]).collect())
                        .collect();
                    for row in &rows {
                        let key: Vec<&Datum> = child_cols.iter().map(|&c| &row[c]).collect();
                        if !parent_keys.contains(&key) {
                            return Err(RqsError::ConstraintViolation(format!(
                                "{}{columns:?} -> {parent_table}{parent_columns:?}: \
                                 missing parent for {key:?}",
                                table.name
                            )));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{InMemoryBackend, StorageBackend};

    fn empl_table() -> Table {
        let mut t = Table::new(
            "empl",
            vec![
                Column {
                    name: "eno".into(),
                    ty: ColumnType::Int,
                },
                Column {
                    name: "nam".into(),
                    ty: ColumnType::Text,
                },
                Column {
                    name: "sal".into(),
                    ty: ColumnType::Int,
                },
                Column {
                    name: "dno".into(),
                    ty: ColumnType::Int,
                },
            ],
        );
        t.constraints.push(TableConstraint::Key {
            columns: vec!["eno".into()],
        });
        t.constraints.push(TableConstraint::ValueBound {
            column: "sal".into(),
            lo: 10_000,
            hi: 90_000,
        });
        t
    }

    fn row(eno: i64, nam: &str, sal: i64, dno: i64) -> Tuple {
        vec![
            Datum::Int(eno),
            Datum::text(nam),
            Datum::Int(sal),
            Datum::Int(dno),
        ]
    }

    /// Catalog + backend pair with `empl` registered in both.
    fn setup() -> (Catalog, InMemoryBackend) {
        let mut cat = Catalog::new();
        let table = empl_table();
        let mut backend = InMemoryBackend::new();
        backend.create_table("empl", &table.columns).unwrap();
        cat.create_table(table).unwrap();
        (cat, backend)
    }

    fn insert_checked(
        cat: &Catalog,
        backend: &mut InMemoryBackend,
        table: &str,
        tuple: Tuple,
    ) -> RqsResult<()> {
        check_insert(cat, backend, table, &tuple)?;
        backend.insert(table, tuple)
    }

    #[test]
    fn insert_and_scan() {
        let (cat, mut backend) = setup();
        insert_checked(&cat, &mut backend, "empl", row(1, "smiley", 50_000, 10)).unwrap();
        insert_checked(&cat, &mut backend, "empl", row(2, "jones", 30_000, 10)).unwrap();
        assert_eq!(backend.row_count("empl").unwrap(), 2);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut cat = Catalog::new();
        cat.create_table(empl_table()).unwrap();
        assert!(matches!(
            cat.create_table(empl_table()),
            Err(RqsError::DuplicateTable(_))
        ));
    }

    #[test]
    fn type_mismatch_rejected() {
        let (cat, mut backend) = setup();
        let bad = vec![
            Datum::text("x"),
            Datum::text("y"),
            Datum::Int(20_000),
            Datum::Int(1),
        ];
        assert!(matches!(
            insert_checked(&cat, &mut backend, "empl", bad),
            Err(RqsError::Type(_))
        ));
        let short = vec![Datum::Int(1)];
        assert!(matches!(
            insert_checked(&cat, &mut backend, "empl", short),
            Err(RqsError::Type(_))
        ));
    }

    #[test]
    fn value_bound_enforced() {
        let (cat, mut backend) = setup();
        assert!(matches!(
            insert_checked(&cat, &mut backend, "empl", row(1, "cheap", 5_000, 10)),
            Err(RqsError::ConstraintViolation(_))
        ));
        assert!(matches!(
            insert_checked(&cat, &mut backend, "empl", row(1, "rich", 95_000, 10)),
            Err(RqsError::ConstraintViolation(_))
        ));
    }

    #[test]
    fn key_enforced() {
        let (cat, mut backend) = setup();
        insert_checked(&cat, &mut backend, "empl", row(1, "smiley", 50_000, 10)).unwrap();
        assert!(matches!(
            insert_checked(&cat, &mut backend, "empl", row(1, "other", 40_000, 11)),
            Err(RqsError::ConstraintViolation(_))
        ));
    }

    #[test]
    fn key_enforced_through_index_too() {
        let (cat, mut backend) = setup();
        backend.create_index("empl", 0).unwrap();
        insert_checked(&cat, &mut backend, "empl", row(1, "smiley", 50_000, 10)).unwrap();
        assert!(insert_checked(&cat, &mut backend, "empl", row(1, "dup", 40_000, 10)).is_err());
        insert_checked(&cat, &mut backend, "empl", row(2, "fine", 40_000, 10)).unwrap();
    }

    #[test]
    fn foreign_key_enforced() {
        let (mut cat, mut backend) = setup();
        let mut dept = Table::new(
            "dept",
            vec![
                Column {
                    name: "dno".into(),
                    ty: ColumnType::Int,
                },
                Column {
                    name: "fct".into(),
                    ty: ColumnType::Text,
                },
            ],
        );
        dept.constraints.push(TableConstraint::Key {
            columns: vec!["dno".into()],
        });
        backend.create_table("dept", &dept.columns).unwrap();
        cat.create_table(dept).unwrap();
        cat.table_mut("empl")
            .unwrap()
            .constraints
            .push(TableConstraint::ForeignKey {
                columns: vec!["dno".into()],
                parent_table: "dept".into(),
                parent_columns: vec!["dno".into()],
            });
        assert!(matches!(
            insert_checked(&cat, &mut backend, "empl", row(1, "orphan", 20_000, 99)),
            Err(RqsError::ConstraintViolation(_))
        ));
        insert_checked(
            &cat,
            &mut backend,
            "dept",
            vec![Datum::Int(99), Datum::text("spying")],
        )
        .unwrap();
        insert_checked(&cat, &mut backend, "empl", row(1, "fine", 20_000, 99)).unwrap();
    }

    #[test]
    fn constraint_specs_round_trip() {
        let constraints = [
            TableConstraint::ValueBound {
                column: "sal".into(),
                lo: -10,
                hi: 90_000,
            },
            TableConstraint::Key {
                columns: vec!["eno".into()],
            },
            TableConstraint::Key {
                columns: vec!["a".into(), "b".into()],
            },
            TableConstraint::ForeignKey {
                columns: vec!["dno".into()],
                parent_table: "dept".into(),
                parent_columns: vec!["dno".into()],
            },
            TableConstraint::ForeignKey {
                columns: vec!["x".into(), "y".into()],
                parent_table: "p".into(),
                parent_columns: vec!["u".into(), "v".into()],
            },
        ];
        for c in &constraints {
            assert_eq!(&TableConstraint::parse_spec(&c.to_spec()).unwrap(), c);
        }
        for bad in ["", "nope", "bound a b c", "key", "fk a b"] {
            assert!(
                TableConstraint::parse_spec(bad).is_err(),
                "{bad:?} must not parse"
            );
        }
    }

    #[test]
    fn drop_table() {
        let mut cat = Catalog::new();
        cat.create_table(empl_table()).unwrap();
        cat.drop_table("empl").unwrap();
        assert!(!cat.has_table("empl"));
        assert!(cat.drop_table("empl").is_err());
    }

    mod validate_all_tests {
        use super::*;

        /// empdep's cyclic foreign keys: empl.dno → dept.dno, dept.mgr →
        /// empl.eno.
        fn cyclic_setup() -> (Catalog, InMemoryBackend) {
            let mut cat = Catalog::new();
            let mut backend = InMemoryBackend::new();
            let mut empl = Table::new(
                "empl",
                vec![
                    Column {
                        name: "eno".into(),
                        ty: ColumnType::Int,
                    },
                    Column {
                        name: "dno".into(),
                        ty: ColumnType::Int,
                    },
                ],
            );
            empl.constraints.push(TableConstraint::Key {
                columns: vec!["eno".into()],
            });
            empl.constraints.push(TableConstraint::ForeignKey {
                columns: vec!["dno".into()],
                parent_table: "dept".into(),
                parent_columns: vec!["dno".into()],
            });
            let mut dept = Table::new(
                "dept",
                vec![
                    Column {
                        name: "dno".into(),
                        ty: ColumnType::Int,
                    },
                    Column {
                        name: "mgr".into(),
                        ty: ColumnType::Int,
                    },
                ],
            );
            dept.constraints.push(TableConstraint::Key {
                columns: vec!["dno".into()],
            });
            dept.constraints.push(TableConstraint::ForeignKey {
                columns: vec!["mgr".into()],
                parent_table: "empl".into(),
                parent_columns: vec!["eno".into()],
            });
            backend.create_table("empl", &empl.columns).unwrap();
            backend.create_table("dept", &dept.columns).unwrap();
            cat.create_table(empl).unwrap();
            cat.create_table(dept).unwrap();
            (cat, backend)
        }

        #[test]
        fn cyclic_fk_bulk_load_validates() {
            let (cat, mut backend) = cyclic_setup();
            backend
                .insert("empl", vec![Datum::Int(1), Datum::Int(10)])
                .unwrap();
            backend
                .insert("dept", vec![Datum::Int(10), Datum::Int(1)])
                .unwrap();
            validate_all(&cat, &backend).unwrap();
        }

        #[test]
        fn validate_all_catches_broken_fk() {
            let (cat, mut backend) = cyclic_setup();
            backend
                .insert("empl", vec![Datum::Int(1), Datum::Int(99)])
                .unwrap();
            backend
                .insert("dept", vec![Datum::Int(10), Datum::Int(1)])
                .unwrap();
            assert!(matches!(
                validate_all(&cat, &backend),
                Err(RqsError::ConstraintViolation(_))
            ));
        }

        #[test]
        fn validate_all_catches_duplicate_key() {
            let (cat, mut backend) = cyclic_setup();
            backend
                .insert("dept", vec![Datum::Int(10), Datum::Int(1)])
                .unwrap();
            backend
                .insert("empl", vec![Datum::Int(1), Datum::Int(10)])
                .unwrap();
            backend
                .insert("empl", vec![Datum::Int(1), Datum::Int(10)])
                .unwrap();
            assert!(validate_all(&cat, &backend).is_err());
        }
    }
}

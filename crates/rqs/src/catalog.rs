//! Catalog: table schemas, tuple storage, secondary indexes and
//! integrity-constraint enforcement.
//!
//! The paper assumes "the use of an existing database system" that already
//! maintains value bounds, keys and referential integrity — the semantic
//! knowledge its optimizer exploits. This module is that system's storage
//! layer: constraints are checked on every insert, so the data always
//! satisfies what the front-end's semantic optimizer assumes about it.

use crate::error::{RqsError, RqsResult};
use crate::value::{Datum, Tuple};
use std::collections::BTreeMap;
use std::fmt;

/// Column type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ColumnType {
    Int,
    Text,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::Int => f.write_str("INT"),
            ColumnType::Text => f.write_str("TEXT"),
        }
    }
}

/// A column: name and type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Column {
    pub name: String,
    pub ty: ColumnType,
}

/// Table-level integrity constraints, enforced on insert.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TableConstraint {
    /// Values of the column must lie within `[lo, hi]`.
    ValueBound { column: String, lo: i64, hi: i64 },
    /// The column set is a key (no two rows agree on all of them).
    Key { columns: Vec<String> },
    /// Values of `columns` must appear as `parent_columns` values in
    /// `parent_table` (referential integrity).
    ForeignKey { columns: Vec<String>, parent_table: String, parent_columns: Vec<String> },
}

/// A stored table: schema, rows, optional secondary indexes.
#[derive(Clone, Debug)]
pub struct Table {
    pub name: String,
    pub columns: Vec<Column>,
    pub constraints: Vec<TableConstraint>,
    rows: Vec<Tuple>,
    /// column index → value → row ids (secondary index).
    indexes: BTreeMap<usize, BTreeMap<Datum, Vec<usize>>>,
}

impl Table {
    pub fn new(name: &str, columns: Vec<Column>) -> Table {
        Table {
            name: name.to_owned(),
            columns,
            constraints: Vec::new(),
            rows: Vec::new(),
            indexes: BTreeMap::new(),
        }
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Creates a secondary index on `column` and backfills it.
    pub fn create_index(&mut self, column: &str) -> RqsResult<()> {
        let col = self
            .column_index(column)
            .ok_or_else(|| RqsError::UnknownColumn(format!("{}.{}", self.name, column)))?;
        let mut index: BTreeMap<Datum, Vec<usize>> = BTreeMap::new();
        for (rid, row) in self.rows.iter().enumerate() {
            index.entry(row[col].clone()).or_default().push(rid);
        }
        self.indexes.insert(col, index);
        Ok(())
    }

    /// Row ids matching `value` on `col`, when an index exists.
    pub fn index_lookup(&self, col: usize, value: &Datum) -> Option<&[usize]> {
        self.indexes
            .get(&col)
            .map(|idx| idx.get(value).map(Vec::as_slice).unwrap_or(&[]))
    }

    pub fn has_index(&self, col: usize) -> bool {
        self.indexes.contains_key(&col)
    }

    /// Type-checks a tuple against the schema.
    fn typecheck(&self, tuple: &Tuple) -> RqsResult<()> {
        if tuple.len() != self.columns.len() {
            return Err(RqsError::Type(format!(
                "{} expects {} values, got {}",
                self.name,
                self.columns.len(),
                tuple.len()
            )));
        }
        for (col, value) in self.columns.iter().zip(tuple) {
            let ok = matches!(
                (col.ty, value),
                (ColumnType::Int, Datum::Int(_)) | (ColumnType::Text, Datum::Text(_))
            );
            if !ok {
                return Err(RqsError::Type(format!(
                    "column {}.{} is {}, got {value}",
                    self.name, col.name, col.ty
                )));
            }
        }
        Ok(())
    }

    /// Checks constraints local to this table (bounds, keys).
    fn check_local_constraints(&self, tuple: &Tuple) -> RqsResult<()> {
        for c in &self.constraints {
            match c {
                TableConstraint::ValueBound { column, lo, hi } => {
                    let col = self.column_index(column).ok_or_else(|| {
                        RqsError::Internal(format!("bound on missing column {column}"))
                    })?;
                    let v = tuple[col].as_int().ok_or_else(|| {
                        RqsError::Type(format!("value bound on non-integer column {column}"))
                    })?;
                    if v < *lo || v > *hi {
                        return Err(RqsError::ConstraintViolation(format!(
                            "{}.{column} = {v} outside [{lo}, {hi}]",
                            self.name
                        )));
                    }
                }
                TableConstraint::Key { columns } => {
                    let cols: Vec<usize> = columns
                        .iter()
                        .map(|c| {
                            self.column_index(c).ok_or_else(|| {
                                RqsError::Internal(format!("key on missing column {c}"))
                            })
                        })
                        .collect::<RqsResult<_>>()?;
                    // Use an index when one covers the first key column.
                    let dup = if cols.len() == 1 && self.has_index(cols[0]) {
                        self.index_lookup(cols[0], &tuple[cols[0]])
                            .is_some_and(|rids| !rids.is_empty())
                    } else {
                        self.rows
                            .iter()
                            .any(|row| cols.iter().all(|&c| row[c] == tuple[c]))
                    };
                    if dup {
                        return Err(RqsError::ConstraintViolation(format!(
                            "duplicate key {:?} in {}",
                            columns, self.name
                        )));
                    }
                }
                TableConstraint::ForeignKey { .. } => {} // catalog-level
            }
        }
        Ok(())
    }

    fn push_row(&mut self, tuple: Tuple) {
        let rid = self.rows.len();
        for (&col, index) in self.indexes.iter_mut() {
            index.entry(tuple[col].clone()).or_default().push(rid);
        }
        self.rows.push(tuple);
    }

    /// Removes all rows (used by the coupling layer to reset intermediate
    /// relations, the paper's `setrel`).
    pub fn truncate(&mut self) {
        self.rows.clear();
        for index in self.indexes.values_mut() {
            index.clear();
        }
    }
}

/// The catalog of all tables.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn create_table(&mut self, table: Table) -> RqsResult<()> {
        if self.tables.contains_key(&table.name) {
            return Err(RqsError::DuplicateTable(table.name));
        }
        self.tables.insert(table.name.clone(), table);
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str) -> RqsResult<()> {
        self.tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| RqsError::UnknownTable(name.to_owned()))
    }

    pub fn table(&self, name: &str) -> RqsResult<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| RqsError::UnknownTable(name.to_owned()))
    }

    pub fn table_mut(&mut self, name: &str) -> RqsResult<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| RqsError::UnknownTable(name.to_owned()))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Inserts with full constraint checking, including foreign keys that
    /// need to see other tables.
    pub fn insert(&mut self, table_name: &str, tuple: Tuple) -> RqsResult<()> {
        let table = self.table(table_name)?;
        table.typecheck(&tuple)?;
        table.check_local_constraints(&tuple)?;
        // Foreign keys: child values must exist in the parent.
        for c in table.constraints.clone() {
            if let TableConstraint::ForeignKey { columns, parent_table, parent_columns } = c {
                let child_cols: Vec<usize> = columns
                    .iter()
                    .map(|c| {
                        table
                            .column_index(c)
                            .ok_or_else(|| RqsError::Internal(format!("fk on missing column {c}")))
                    })
                    .collect::<RqsResult<_>>()?;
                let parent = self.table(&parent_table)?;
                let parent_cols: Vec<usize> = parent_columns
                    .iter()
                    .map(|c| {
                        parent.column_index(c).ok_or_else(|| {
                            RqsError::Internal(format!("fk to missing column {c}"))
                        })
                    })
                    .collect::<RqsResult<_>>()?;
                let found = parent.rows().iter().any(|prow| {
                    child_cols
                        .iter()
                        .zip(&parent_cols)
                        .all(|(&cc, &pc)| tuple[cc] == prow[pc])
                });
                if !found {
                    return Err(RqsError::ConstraintViolation(format!(
                        "{table_name}{:?} -> {parent_table}{:?}: no parent for {:?}",
                        columns,
                        parent_columns,
                        child_cols.iter().map(|&c| tuple[c].clone()).collect::<Vec<_>>()
                    )));
                }
            }
        }
        self.table_mut(table_name)?.push_row(tuple);
        Ok(())
    }

    /// Inserts without constraint checks (bulk loads of pre-validated data).
    pub fn insert_unchecked(&mut self, table_name: &str, tuple: Tuple) -> RqsResult<()> {
        let table = self.table(table_name)?;
        table.typecheck(&tuple)?;
        self.table_mut(table_name)?.push_row(tuple);
        Ok(())
    }

    /// Re-validates every constraint of every table against the stored
    /// data. Needed after bulk loads through [`Catalog::insert_unchecked`],
    /// which exist because cyclic foreign keys (the paper's `empdep` has
    /// `empl.dno → dept.dno` *and* `dept.mgr → empl.eno`) make strict
    /// insert-time checking impossible.
    pub fn validate_all(&self) -> RqsResult<()> {
        for table in self.tables.values() {
            for c in &table.constraints {
                match c {
                    TableConstraint::ValueBound { column, lo, hi } => {
                        let col = table.column_index(column).ok_or_else(|| {
                            RqsError::Internal(format!("bound on missing column {column}"))
                        })?;
                        for row in table.rows() {
                            let v = row[col].as_int().ok_or_else(|| {
                                RqsError::Type(format!("bound on non-integer column {column}"))
                            })?;
                            if v < *lo || v > *hi {
                                return Err(RqsError::ConstraintViolation(format!(
                                    "{}.{column} = {v} outside [{lo}, {hi}]",
                                    table.name
                                )));
                            }
                        }
                    }
                    TableConstraint::Key { columns } => {
                        let cols: Vec<usize> = columns
                            .iter()
                            .map(|c| {
                                table.column_index(c).ok_or_else(|| {
                                    RqsError::Internal(format!("key on missing column {c}"))
                                })
                            })
                            .collect::<RqsResult<_>>()?;
                        let mut seen = std::collections::HashSet::new();
                        for row in table.rows() {
                            let key: Vec<&Datum> = cols.iter().map(|&c| &row[c]).collect();
                            if !seen.insert(key) {
                                return Err(RqsError::ConstraintViolation(format!(
                                    "duplicate key {columns:?} in {}",
                                    table.name
                                )));
                            }
                        }
                    }
                    TableConstraint::ForeignKey { columns, parent_table, parent_columns } => {
                        let child_cols: Vec<usize> = columns
                            .iter()
                            .map(|c| {
                                table.column_index(c).ok_or_else(|| {
                                    RqsError::Internal(format!("fk on missing column {c}"))
                                })
                            })
                            .collect::<RqsResult<_>>()?;
                        let parent = self.table(parent_table)?;
                        let parent_cols: Vec<usize> = parent_columns
                            .iter()
                            .map(|c| {
                                parent.column_index(c).ok_or_else(|| {
                                    RqsError::Internal(format!("fk to missing column {c}"))
                                })
                            })
                            .collect::<RqsResult<_>>()?;
                        let parent_keys: std::collections::HashSet<Vec<&Datum>> = parent
                            .rows()
                            .iter()
                            .map(|r| parent_cols.iter().map(|&c| &r[c]).collect())
                            .collect();
                        for row in table.rows() {
                            let key: Vec<&Datum> =
                                child_cols.iter().map(|&c| &row[c]).collect();
                            if !parent_keys.contains(&key) {
                                return Err(RqsError::ConstraintViolation(format!(
                                    "{}{columns:?} -> {parent_table}{parent_columns:?}: \
                                     missing parent for {key:?}",
                                    table.name
                                )));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empl_table() -> Table {
        let mut t = Table::new(
            "empl",
            vec![
                Column { name: "eno".into(), ty: ColumnType::Int },
                Column { name: "nam".into(), ty: ColumnType::Text },
                Column { name: "sal".into(), ty: ColumnType::Int },
                Column { name: "dno".into(), ty: ColumnType::Int },
            ],
        );
        t.constraints.push(TableConstraint::Key { columns: vec!["eno".into()] });
        t.constraints.push(TableConstraint::ValueBound {
            column: "sal".into(),
            lo: 10_000,
            hi: 90_000,
        });
        t
    }

    fn row(eno: i64, nam: &str, sal: i64, dno: i64) -> Tuple {
        vec![Datum::Int(eno), Datum::text(nam), Datum::Int(sal), Datum::Int(dno)]
    }

    #[test]
    fn insert_and_scan() {
        let mut cat = Catalog::new();
        cat.create_table(empl_table()).unwrap();
        cat.insert("empl", row(1, "smiley", 50_000, 10)).unwrap();
        cat.insert("empl", row(2, "jones", 30_000, 10)).unwrap();
        assert_eq!(cat.table("empl").unwrap().len(), 2);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut cat = Catalog::new();
        cat.create_table(empl_table()).unwrap();
        assert!(matches!(
            cat.create_table(empl_table()),
            Err(RqsError::DuplicateTable(_))
        ));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut cat = Catalog::new();
        cat.create_table(empl_table()).unwrap();
        let bad = vec![Datum::text("x"), Datum::text("y"), Datum::Int(20_000), Datum::Int(1)];
        assert!(matches!(cat.insert("empl", bad), Err(RqsError::Type(_))));
        let short = vec![Datum::Int(1)];
        assert!(matches!(cat.insert("empl", short), Err(RqsError::Type(_))));
    }

    #[test]
    fn value_bound_enforced() {
        let mut cat = Catalog::new();
        cat.create_table(empl_table()).unwrap();
        assert!(matches!(
            cat.insert("empl", row(1, "cheap", 5_000, 10)),
            Err(RqsError::ConstraintViolation(_))
        ));
        assert!(matches!(
            cat.insert("empl", row(1, "rich", 95_000, 10)),
            Err(RqsError::ConstraintViolation(_))
        ));
    }

    #[test]
    fn key_enforced() {
        let mut cat = Catalog::new();
        cat.create_table(empl_table()).unwrap();
        cat.insert("empl", row(1, "smiley", 50_000, 10)).unwrap();
        assert!(matches!(
            cat.insert("empl", row(1, "other", 40_000, 11)),
            Err(RqsError::ConstraintViolation(_))
        ));
    }

    #[test]
    fn key_enforced_through_index_too() {
        let mut cat = Catalog::new();
        let mut t = empl_table();
        t.create_index("eno").unwrap();
        cat.create_table(t).unwrap();
        cat.insert("empl", row(1, "smiley", 50_000, 10)).unwrap();
        assert!(cat.insert("empl", row(1, "dup", 40_000, 10)).is_err());
        cat.insert("empl", row(2, "fine", 40_000, 10)).unwrap();
    }

    #[test]
    fn foreign_key_enforced() {
        let mut cat = Catalog::new();
        let mut dept = Table::new(
            "dept",
            vec![
                Column { name: "dno".into(), ty: ColumnType::Int },
                Column { name: "fct".into(), ty: ColumnType::Text },
            ],
        );
        dept.constraints.push(TableConstraint::Key { columns: vec!["dno".into()] });
        cat.create_table(dept).unwrap();
        let mut empl = empl_table();
        empl.constraints.push(TableConstraint::ForeignKey {
            columns: vec!["dno".into()],
            parent_table: "dept".into(),
            parent_columns: vec!["dno".into()],
        });
        cat.create_table(empl).unwrap();
        assert!(matches!(
            cat.insert("empl", row(1, "orphan", 20_000, 99)),
            Err(RqsError::ConstraintViolation(_))
        ));
        cat.insert("dept", vec![Datum::Int(99), Datum::text("spying")]).unwrap();
        cat.insert("empl", row(1, "fine", 20_000, 99)).unwrap();
    }

    #[test]
    fn index_lookup_finds_rows() {
        let mut t = empl_table();
        t.push_row(row(1, "smiley", 50_000, 10));
        t.push_row(row(2, "jones", 30_000, 20));
        t.push_row(row(3, "leamas", 30_000, 10));
        t.create_index("dno").unwrap();
        let col = t.column_index("dno").unwrap();
        assert_eq!(t.index_lookup(col, &Datum::Int(10)).unwrap(), &[0, 2]);
        assert_eq!(t.index_lookup(col, &Datum::Int(99)).unwrap(), &[] as &[usize]);
        assert!(t.index_lookup(0, &Datum::Int(1)).is_none()); // no index
    }

    #[test]
    fn index_maintained_on_insert_after_creation() {
        let mut t = empl_table();
        t.create_index("dno").unwrap();
        t.push_row(row(1, "a", 20_000, 7));
        let col = t.column_index("dno").unwrap();
        assert_eq!(t.index_lookup(col, &Datum::Int(7)).unwrap(), &[0]);
    }

    #[test]
    fn truncate_clears_rows_and_indexes() {
        let mut t = empl_table();
        t.create_index("dno").unwrap();
        t.push_row(row(1, "a", 20_000, 7));
        t.truncate();
        assert!(t.is_empty());
        let col = t.column_index("dno").unwrap();
        assert_eq!(t.index_lookup(col, &Datum::Int(7)).unwrap(), &[] as &[usize]);
    }

    #[test]
    fn drop_table() {
        let mut cat = Catalog::new();
        cat.create_table(empl_table()).unwrap();
        cat.drop_table("empl").unwrap();
        assert!(!cat.has_table("empl"));
        assert!(cat.drop_table("empl").is_err());
    }
}

#[cfg(test)]
mod validate_all_tests {
    use super::*;

    fn cyclic_catalog() -> Catalog {
        // empdep's cyclic foreign keys: empl.dno → dept.dno, dept.mgr → empl.eno.
        let mut cat = Catalog::new();
        let mut empl = Table::new(
            "empl",
            vec![
                Column { name: "eno".into(), ty: ColumnType::Int },
                Column { name: "dno".into(), ty: ColumnType::Int },
            ],
        );
        empl.constraints.push(TableConstraint::Key { columns: vec!["eno".into()] });
        empl.constraints.push(TableConstraint::ForeignKey {
            columns: vec!["dno".into()],
            parent_table: "dept".into(),
            parent_columns: vec!["dno".into()],
        });
        let mut dept = Table::new(
            "dept",
            vec![
                Column { name: "dno".into(), ty: ColumnType::Int },
                Column { name: "mgr".into(), ty: ColumnType::Int },
            ],
        );
        dept.constraints.push(TableConstraint::Key { columns: vec!["dno".into()] });
        dept.constraints.push(TableConstraint::ForeignKey {
            columns: vec!["mgr".into()],
            parent_table: "empl".into(),
            parent_columns: vec!["eno".into()],
        });
        cat.create_table(empl).unwrap();
        cat.create_table(dept).unwrap();
        cat
    }

    #[test]
    fn cyclic_fk_bulk_load_validates() {
        let mut cat = cyclic_catalog();
        cat.insert_unchecked("empl", vec![Datum::Int(1), Datum::Int(10)]).unwrap();
        cat.insert_unchecked("dept", vec![Datum::Int(10), Datum::Int(1)]).unwrap();
        cat.validate_all().unwrap();
    }

    #[test]
    fn validate_all_catches_broken_fk() {
        let mut cat = cyclic_catalog();
        cat.insert_unchecked("empl", vec![Datum::Int(1), Datum::Int(99)]).unwrap();
        cat.insert_unchecked("dept", vec![Datum::Int(10), Datum::Int(1)]).unwrap();
        assert!(matches!(
            cat.validate_all(),
            Err(RqsError::ConstraintViolation(_))
        ));
    }

    #[test]
    fn validate_all_catches_duplicate_key() {
        let mut cat = cyclic_catalog();
        cat.insert_unchecked("dept", vec![Datum::Int(10), Datum::Int(1)]).unwrap();
        cat.insert_unchecked("empl", vec![Datum::Int(1), Datum::Int(10)]).unwrap();
        cat.insert_unchecked("empl", vec![Datum::Int(1), Datum::Int(10)]).unwrap();
        assert!(cat.validate_all().is_err());
    }
}

//! The value model: what can live in a table cell.
//!
//! The definitions live in the [`storage`] crate so the paged engine's
//! B+-trees and tuple codec can key on [`Datum`] directly; this module
//! re-exports them under their historical `rqs::value` path.

pub use storage::value::{Datum, Tuple};

//! Predicated UPDATE and DELETE.
//!
//! The WHERE clause of a DML statement is resolved through the same
//! machinery as a single-table SELECT ([`plan::resolve`] over a
//! synthetic core), so its restrictions feed [`exec::choose_access`]
//! and indexed predicates ride `index_lookup`/`index_range` instead of
//! heap scans. Execution then has three phases:
//!
//! 1. **read** — collect the matching rows through the chosen access
//!    path (the predicate is a pure function of the tuple, so both
//!    backends and both phases select the same multiset). On backends
//!    with snapshot reads this phase sees only committed-at-snapshot
//!    rows (plus the transaction's own writes), never a concurrent
//!    writer's uncommitted data;
//! 2. **re-check** — validate the statement against the integrity
//!    constraints it can disturb: CHECK bounds and type/size caps on
//!    assigned columns, key uniqueness against the *post-statement*
//!    state, the row's own foreign keys, and restrict semantics for
//!    parents (updating a referenced key column or deleting a
//!    referenced row is refused while a child still points at it).
//!    These probes run in *constraint-probe* mode: they judge the
//!    latest committed state plus the writer's own rows, and conflict
//!    retryably when a probed table carries another transaction's
//!    uncommitted writes — a verdict against data that may roll back
//!    would be a guess either way;
//! 3. **mutate** — one backend transaction around
//!    [`StorageBackend::update_where`]/[`StorageBackend::delete_where`],
//!    so on the paged engine the whole statement commits (and
//!    crash-recovers) atomically through the WAL. Under the shared
//!    server's row-granular locking, this is also where each matched
//!    rid is locked exclusively (via the installed
//!    [`crate::backend::RowLockHook`]) before any row is touched: a
//!    held row aborts the statement retryably with nothing to undo.
//!    The read phase itself takes no row locks — concurrent same-table
//!    writers are serialized per row, not per statement, and the
//!    engine's first-updater-wins check turns a race on one row into a
//!    retryable conflict instead of a silent overwrite.

use crate::backend::{AccessPath, Snapshot, StorageBackend};
use crate::catalog::{self, Catalog, ColumnType, Table, TableConstraint};
use crate::database::run_txn;
use crate::error::{RqsError, RqsResult};
use crate::exec;
use crate::plan::{self, JoinCond, Restriction};
use crate::sql::ast::{ArithOp, Condition, SelectCore, SetExpr, SetOperand};
use crate::value::{Datum, Tuple};
use std::collections::HashSet;

/// One resolved `SET col = expr` assignment.
struct ResolvedSet {
    col: usize,
    expr: ResolvedExpr,
}

enum ResolvedExpr {
    Value(ResolvedOperand),
    Arith(ResolvedOperand, ArithOp, ResolvedOperand),
}

enum ResolvedOperand {
    Col(usize),
    Lit(Datum),
}

impl ResolvedOperand {
    fn value(&self, row: &Tuple) -> Datum {
        match self {
            ResolvedOperand::Col(i) => row[*i].clone(),
            ResolvedOperand::Lit(d) => d.clone(),
        }
    }
}

/// Resolves and statically type-checks the SET list against the schema.
fn resolve_sets(table: &Table, sets: &[(String, SetExpr)]) -> RqsResult<Vec<ResolvedSet>> {
    let mut out: Vec<ResolvedSet> = Vec::with_capacity(sets.len());
    for (name, expr) in sets {
        let col = table
            .column_index(name)
            .ok_or_else(|| RqsError::UnknownColumn(format!("{}.{name}", table.name)))?;
        if out.iter().any(|s| s.col == col) {
            return Err(RqsError::Syntax(format!("column {name} assigned twice")));
        }
        let operand = |op: &SetOperand| -> RqsResult<(ResolvedOperand, ColumnType)> {
            match op {
                SetOperand::Column(c) => {
                    let i = table
                        .column_index(c)
                        .ok_or_else(|| RqsError::UnknownColumn(format!("{}.{c}", table.name)))?;
                    Ok((ResolvedOperand::Col(i), table.columns[i].ty))
                }
                SetOperand::Literal(d @ Datum::Int(_)) => {
                    Ok((ResolvedOperand::Lit(d.clone()), ColumnType::Int))
                }
                SetOperand::Literal(d @ Datum::Text(_)) => {
                    Ok((ResolvedOperand::Lit(d.clone()), ColumnType::Text))
                }
            }
        };
        let target_ty = table.columns[col].ty;
        let resolved = match expr {
            SetExpr::Value(v) => {
                let (v, ty) = operand(v)?;
                if ty != target_ty {
                    return Err(RqsError::Type(format!(
                        "cannot assign {ty} to {}.{name} ({target_ty})",
                        table.name
                    )));
                }
                ResolvedExpr::Value(v)
            }
            SetExpr::Arith { lhs, op, rhs } => {
                let (lhs, lty) = operand(lhs)?;
                let (rhs, rty) = operand(rhs)?;
                if lty != ColumnType::Int || rty != ColumnType::Int || target_ty != ColumnType::Int
                {
                    return Err(RqsError::Type(format!(
                        "arithmetic in SET needs INT operands and an INT target ({}.{name})",
                        table.name
                    )));
                }
                ResolvedExpr::Arith(lhs, *op, rhs)
            }
        };
        out.push(ResolvedSet {
            col,
            expr: resolved,
        });
    }
    Ok(out)
}

/// Computes the replacement tuple for one matched row.
fn apply_sets(sets: &[ResolvedSet], row: &Tuple) -> Tuple {
    let mut new = row.clone();
    for set in sets {
        new[set.col] = match &set.expr {
            ResolvedExpr::Value(v) => v.value(row),
            ResolvedExpr::Arith(lhs, op, rhs) => {
                let l = lhs.value(row).as_int().expect("statically typed INT");
                let r = rhs.value(row).as_int().expect("statically typed INT");
                Datum::Int(op.eval(l, r))
            }
        };
    }
    new
}

/// Resolves a DML WHERE clause through the SELECT resolver over a
/// synthetic single-variable core, returning its pushed-down
/// restrictions and same-row column comparisons.
fn resolve_filter(
    catalog: &Catalog,
    backend: &dyn StorageBackend,
    table: &str,
    filter: &[Condition],
) -> RqsResult<(Vec<Restriction>, Vec<JoinCond>)> {
    let core = SelectCore {
        distinct: false,
        items: Vec::new(),
        from: vec![(table.to_owned(), table.to_owned())],
        conds: filter.to_vec(),
    };
    let snap = Snapshot { catalog, backend };
    let resolved = plan::resolve(&snap, &core)?;
    if !resolved.subqueries.is_empty() {
        return Err(RqsError::Syntax(
            "subqueries are not supported in DML predicates".into(),
        ));
    }
    Ok((resolved.restrictions, resolved.joins))
}

/// The row predicate: every restriction and every same-row comparison.
/// Always-false restrictions (`col == usize::MAX`) fail every row; the
/// access path already short-circuits them to an empty candidate set.
fn predicate<'a>(
    restrictions: &'a [Restriction],
    self_conds: &'a [JoinCond],
) -> impl FnMut(&Tuple) -> bool + 'a {
    move |row: &Tuple| {
        restrictions
            .iter()
            .all(|r| r.col != usize::MAX && r.op.eval(row[r.col].total_cmp(&r.value)))
            && self_conds
                .iter()
                .all(|j| j.op.eval(row[j.lcol].total_cmp(&row[j.rcol])))
    }
}

/// Read phase: the rows the statement will touch, through the chosen
/// access path.
///
/// The mutate phase re-walks the same candidates inside its backend
/// call, so a DML statement reads its candidate set twice. That is
/// deliberate: the constraint re-checks need the matched/untouched
/// split *before* anything mutates, the predicate is a pure function
/// of the tuple (both walks select the same multiset), and with the
/// buffer pool hot from phase 1 the second walk mostly hits. Threading
/// rids through the trait would save the re-walk at the cost of an
/// id-typed backend interface; revisit if S3 ever shows it mattering.
fn matched_rows(
    backend: &dyn StorageBackend,
    table: &str,
    access: &AccessPath,
    pred: &mut dyn FnMut(&Tuple) -> bool,
) -> RqsResult<Vec<Tuple>> {
    let candidates: Vec<Tuple> = match access {
        AccessPath::Nothing => {
            backend.row_count(table)?; // surface UnknownTable
            Vec::new()
        }
        AccessPath::KeyEq(col, key) => match backend.index_lookup(table, *col, key)? {
            Some(rows) => rows,
            None => backend.scan(table)?,
        },
        AccessPath::KeyRange(col, lower, upper) => {
            match backend.index_range(table, *col, lower.as_ref(), upper.as_ref())? {
                Some(rows) => rows,
                None => backend.scan(table)?,
            }
        }
        AccessPath::FullScan => backend.scan(table)?,
    };
    Ok(candidates.into_iter().filter(|t| pred(t)).collect())
}

/// The rows the statement leaves untouched (everything failing `pred`).
fn untouched_rows(
    backend: &dyn StorageBackend,
    table: &str,
    pred: &mut dyn FnMut(&Tuple) -> bool,
) -> RqsResult<Vec<Tuple>> {
    let mut out = Vec::new();
    backend.for_each(table, &mut |row| {
        if !pred(row) {
            out.push(row.clone());
        }
    })?;
    Ok(out)
}

fn key_of(row: &Tuple, cols: &[usize]) -> Vec<Datum> {
    cols.iter().map(|&c| row[c].clone()).collect()
}

/// One foreign-key edge into a parent table: the child's schema, its
/// fk column indices, and the parent's referenced column indices.
type FkEdge<'a> = (&'a Table, Vec<usize>, Vec<usize>);

/// Names of every table holding a foreign key into `parent`. Public so
/// the server's lock planner reads exactly the tables the restrict
/// checks here will read — one enumeration, no drift. Lookup failures
/// (unknown parent, corrupt constraint) yield an empty list; the
/// statement itself will surface them.
pub fn referencing_table_names(catalog: &Catalog, parent: &str) -> Vec<String> {
    referencing_edges(catalog, parent)
        .map(|edges| {
            edges
                .iter()
                .map(|(child, _, _)| child.name.clone())
                .collect()
        })
        .unwrap_or_default()
}

/// Every [`FkEdge`] whose parent is `name` — the edges restrict
/// semantics must re-check.
fn referencing_edges<'a>(catalog: &'a Catalog, name: &str) -> RqsResult<Vec<FkEdge<'a>>> {
    let parent = catalog.table(name)?;
    let mut out = Vec::new();
    for child_name in catalog.table_names() {
        let child = catalog.table(child_name)?;
        for c in &child.constraints {
            let TableConstraint::ForeignKey {
                columns,
                parent_table,
                parent_columns,
            } = c
            else {
                continue;
            };
            if parent_table != name {
                continue;
            }
            let child_cols = catalog::resolve_columns(child, columns, "fk")?;
            let parent_cols = catalog::resolve_columns(parent, parent_columns, "fk")?;
            out.push((child, child_cols, parent_cols));
        }
    }
    Ok(out)
}

/// Constraint re-checks for UPDATE, scoped to the assigned columns:
/// CHECK bounds, key uniqueness against the post-statement state, the
/// updated rows' own foreign keys, and children still referencing a
/// rewritten parent key.
fn check_update_constraints(
    catalog: &Catalog,
    backend: &dyn StorageBackend,
    name: &str,
    new_rows: &[Tuple],
    changed: &HashSet<usize>,
    pred: &mut dyn FnMut(&Tuple) -> bool,
) -> RqsResult<()> {
    let table = catalog.table(name)?;
    for c in &table.constraints {
        if let TableConstraint::ValueBound { column, lo, hi } = c {
            let col = table
                .column_index(column)
                .ok_or_else(|| RqsError::Internal(format!("bound on missing column {column}")))?;
            if changed.contains(&col) {
                for row in new_rows {
                    catalog::check_value_bound(table, row, column, *lo, *hi)?;
                }
            }
        }
    }

    let edges = referencing_edges(catalog, name)?;
    let parent_key_rewritten = edges
        .iter()
        .any(|(_, _, parent_cols)| parent_cols.iter().any(|c| changed.contains(c)));
    let needs_final = parent_key_rewritten
        || table.constraints.iter().any(|c| match c {
            TableConstraint::Key { columns } => catalog::resolve_columns(table, columns, "key")
                .is_ok_and(|cols| cols.iter().any(|c| changed.contains(c))),
            TableConstraint::ForeignKey {
                columns,
                parent_table,
                ..
            } => {
                parent_table == name
                    && catalog::resolve_columns(table, columns, "fk")
                        .is_ok_and(|cols| cols.iter().any(|c| changed.contains(c)))
            }
            TableConstraint::ValueBound { .. } => false,
        });
    let untouched = if needs_final {
        untouched_rows(backend, name, pred)?
    } else {
        Vec::new()
    };

    // Key uniqueness against the final state (untouched ∪ new): catches
    // collisions with surviving rows and between two updated rows.
    for c in &table.constraints {
        let TableConstraint::Key { columns } = c else {
            continue;
        };
        let cols = catalog::resolve_columns(table, columns, "key")?;
        if !cols.iter().any(|c| changed.contains(c)) {
            continue;
        }
        let mut seen: HashSet<Vec<Datum>> = untouched.iter().map(|r| key_of(r, &cols)).collect();
        for row in new_rows {
            if !seen.insert(key_of(row, &cols)) {
                return Err(RqsError::ConstraintViolation(format!(
                    "duplicate key {columns:?} in {name}"
                )));
            }
        }
    }

    // The updated rows' own foreign keys (only when an fk column was
    // assigned). A self-referential parent is probed against the final
    // state.
    for c in &table.constraints {
        let TableConstraint::ForeignKey {
            columns,
            parent_table,
            parent_columns,
        } = c
        else {
            continue;
        };
        let child_cols = catalog::resolve_columns(table, columns, "fk")?;
        if !child_cols.iter().any(|c| changed.contains(c)) {
            continue;
        }
        let parent = catalog.table(parent_table)?;
        let parent_cols = catalog::resolve_columns(parent, parent_columns, "fk")?;
        let parent_keys: HashSet<Vec<Datum>> = if parent_table == name {
            untouched
                .iter()
                .chain(new_rows)
                .map(|r| key_of(r, &parent_cols))
                .collect()
        } else {
            let mut keys = HashSet::new();
            backend.for_each(parent_table, &mut |row| {
                keys.insert(key_of(row, &parent_cols));
            })?;
            keys
        };
        for row in new_rows {
            if !parent_keys.contains(&key_of(row, &child_cols)) {
                return Err(RqsError::ConstraintViolation(format!(
                    "{name}{columns:?} -> {parent_table}{parent_columns:?}: no parent for {:?}",
                    key_of(row, &child_cols)
                )));
            }
        }
    }

    // Restrict semantics: rewriting a referenced key column must leave
    // every child row a parent in the final state.
    for (child, child_cols, parent_cols) in &edges {
        if !parent_cols.iter().any(|c| changed.contains(c)) {
            continue;
        }
        let final_keys: HashSet<Vec<Datum>> = untouched
            .iter()
            .chain(new_rows)
            .map(|r| key_of(r, parent_cols))
            .collect();
        let mut orphan: Option<Vec<Datum>> = None;
        let mut check = |row: &Tuple| {
            let key = key_of(row, child_cols);
            if orphan.is_none() && !final_keys.contains(&key) {
                orphan = Some(key);
            }
        };
        if child.name == name {
            untouched.iter().chain(new_rows).for_each(&mut check);
        } else {
            backend.for_each(&child.name, &mut check)?;
        }
        if let Some(key) = orphan {
            return Err(RqsError::ConstraintViolation(format!(
                "{} still references {name} key {key:?}",
                child.name
            )));
        }
    }
    Ok(())
}

/// Restrict semantics for DELETE: every child row must keep a parent
/// among the surviving rows.
fn check_delete_constraints(
    catalog: &Catalog,
    backend: &dyn StorageBackend,
    name: &str,
    pred: &mut dyn FnMut(&Tuple) -> bool,
) -> RqsResult<()> {
    let edges = referencing_edges(catalog, name)?;
    if edges.is_empty() {
        return Ok(());
    }
    let remaining = untouched_rows(backend, name, pred)?;
    for (child, child_cols, parent_cols) in &edges {
        let remaining_keys: HashSet<Vec<Datum>> =
            remaining.iter().map(|r| key_of(r, parent_cols)).collect();
        let mut orphan: Option<Vec<Datum>> = None;
        let mut check = |row: &Tuple| {
            let key = key_of(row, child_cols);
            if orphan.is_none() && !remaining_keys.contains(&key) {
                orphan = Some(key);
            }
        };
        if child.name == name {
            remaining.iter().for_each(&mut check);
        } else {
            backend.for_each(&child.name, &mut check)?;
        }
        if let Some(key) = orphan {
            return Err(RqsError::ConstraintViolation(format!(
                "{} still references {name} key {key:?}",
                child.name
            )));
        }
    }
    Ok(())
}

/// Renders the plan `EXPLAIN UPDATE`/`EXPLAIN DELETE` shows: the exact
/// access path `execute_update`/`execute_delete` would choose for the
/// same predicate (they share `resolve_filter` + `choose_access`),
/// without mutating anything.
pub(crate) fn explain_dml(
    catalog: &Catalog,
    backend: &dyn StorageBackend,
    verb: &str,
    table_name: &str,
    filter: &[Condition],
) -> RqsResult<String> {
    catalog.table(table_name)?;
    let (restrictions, self_conds) = resolve_filter(catalog, backend, table_name, filter)?;
    let restriction_refs: Vec<&Restriction> = restrictions.iter().collect();
    let access = exec::choose_access(backend, table_name, &restriction_refs);
    Ok(format!(
        "{verb} {table_name} [{} restriction(s), {} self cond(s)]\n  {access}\n",
        restrictions.len(),
        self_conds.len(),
    ))
}

/// Executes `UPDATE table SET … [WHERE …]`, returning the row count.
pub(crate) fn execute_update(
    catalog: &Catalog,
    backend: &mut Box<dyn StorageBackend>,
    table_name: &str,
    sets: &[(String, SetExpr)],
    filter: &[Condition],
) -> RqsResult<usize> {
    let table = catalog.table(table_name)?;
    let sets = resolve_sets(table, sets)?;
    let changed: HashSet<usize> = sets.iter().map(|s| s.col).collect();
    let (restrictions, self_conds) = resolve_filter(catalog, backend.as_ref(), table_name, filter)?;
    let restriction_refs: Vec<&Restriction> = restrictions.iter().collect();
    let access = exec::choose_access(backend.as_ref(), table_name, &restriction_refs);
    let mut pred = predicate(&restrictions, &self_conds);
    let matched = matched_rows(backend.as_ref(), table_name, &access, &mut pred)?;
    if matched.is_empty() {
        return Ok(0);
    }
    let mut apply = |row: &Tuple| apply_sets(&sets, row);
    let new_rows: Vec<Tuple> = matched.iter().map(&mut apply).collect();
    // Record- and key-size cap parity with the paged engine: a tuple
    // must fit one 4 KiB page, and values assigned to indexed columns
    // must fit a B+-tree node — enforced here so both backends reject
    // identically, before anything mutates.
    for row in &new_rows {
        let encoded = crate::backend::encoded_tuple_len(row);
        if encoded > storage::page::Page::max_record_len() {
            return Err(storage::StorageError::RecordTooLarge(encoded).into());
        }
        for &col in &changed {
            if backend.has_index(table_name, col) {
                storage::btree::check_key(&row[col])?;
            }
        }
    }
    // Constraint re-checks run in probe mode: latest committed state
    // plus this transaction's own rows, conflicting retryably when the
    // probed tables carry another transaction's uncommitted writes.
    backend.set_constraint_probe(true);
    let checked = check_update_constraints(
        catalog,
        backend.as_ref(),
        table_name,
        &new_rows,
        &changed,
        &mut pred,
    );
    backend.set_constraint_probe(false);
    checked?;
    run_txn(backend, |b| {
        b.update_where(table_name, &access, &mut pred, &mut apply)
    })
}

/// Restrict semantics for the bare `DELETE FROM t` truncation fast
/// path: truncating a table is deleting every row, so it must be
/// refused while any child row still references one — exactly the
/// predicated-DELETE rule with an always-true predicate (the surviving
/// key set is empty). A self-referential table passes trivially: its
/// own rows vanish with it.
pub(crate) fn check_truncate_constraints(
    catalog: &Catalog,
    backend: &dyn StorageBackend,
    name: &str,
) -> RqsResult<()> {
    check_delete_constraints(catalog, backend, name, &mut |_| true)
}

/// Executes `DELETE FROM table WHERE …`, returning the row count.
pub(crate) fn execute_delete(
    catalog: &Catalog,
    backend: &mut Box<dyn StorageBackend>,
    table_name: &str,
    filter: &[Condition],
) -> RqsResult<usize> {
    catalog.table(table_name)?;
    let (restrictions, self_conds) = resolve_filter(catalog, backend.as_ref(), table_name, filter)?;
    let restriction_refs: Vec<&Restriction> = restrictions.iter().collect();
    let access = exec::choose_access(backend.as_ref(), table_name, &restriction_refs);
    let mut pred = predicate(&restrictions, &self_conds);
    let matched = matched_rows(backend.as_ref(), table_name, &access, &mut pred)?;
    if matched.is_empty() {
        return Ok(0);
    }
    // Probe mode for the restrict re-check (see `execute_update`).
    backend.set_constraint_probe(true);
    let checked = check_delete_constraints(catalog, backend.as_ref(), table_name, &mut pred);
    backend.set_constraint_probe(false);
    checked?;
    run_txn(backend, |b| b.delete_where(table_name, &access, &mut pred))
}

//! The public facade: a database accepting SQL text.

use crate::catalog::{Catalog, Column, Table};
use crate::error::{RqsError, RqsResult};
use crate::exec::{self, QueryMetrics};
use crate::plan;
use crate::sql::{self, Statement};
use crate::value::Tuple;

/// Result of executing a statement.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryResult {
    /// Output column labels (`alias.column`), empty for non-queries.
    pub columns: Vec<String>,
    /// Result rows, empty for non-queries.
    pub rows: Vec<Tuple>,
    /// Rows inserted/deleted for DML, 0 for queries.
    pub affected: usize,
    /// Work counters (queries only).
    pub metrics: QueryMetrics,
}

/// An in-memory relational database addressed through SQL.
#[derive(Clone, Debug, Default)]
pub struct Database {
    catalog: Catalog,
}

impl Database {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Executes one SQL statement.
    pub fn execute(&mut self, sql_text: &str) -> RqsResult<QueryResult> {
        let stmt = sql::parse_statement(sql_text)?;
        match stmt {
            Statement::CreateTable { name, columns, constraints } => {
                let cols = columns
                    .into_iter()
                    .map(|(name, ty)| Column { name, ty })
                    .collect();
                let mut table = Table::new(&name, cols);
                table.constraints = constraints;
                self.catalog.create_table(table)?;
                Ok(QueryResult::default())
            }
            Statement::CreateIndex { table, column } => {
                self.catalog.table_mut(&table)?.create_index(&column)?;
                Ok(QueryResult::default())
            }
            Statement::Insert { table, rows } => {
                let affected = rows.len();
                for row in rows {
                    self.catalog.insert(&table, row)?;
                }
                Ok(QueryResult { affected, ..Default::default() })
            }
            Statement::Delete { table } => {
                let t = self.catalog.table_mut(&table)?;
                let affected = t.len();
                t.truncate();
                Ok(QueryResult { affected, ..Default::default() })
            }
            Statement::DropTable { name } => {
                self.catalog.drop_table(&name)?;
                Ok(QueryResult::default())
            }
            Statement::Select(select) => self.run_select(&select),
            Statement::Explain(select) => {
                let text = self.explain_select(&select)?;
                Ok(QueryResult {
                    columns: vec!["plan".into()],
                    rows: text
                        .lines()
                        .map(|l| vec![crate::value::Datum::text(l)])
                        .collect(),
                    ..Default::default()
                })
            }
        }
    }

    /// Executes a SELECT without requiring `&mut self`.
    pub fn query(&self, sql_text: &str) -> RqsResult<QueryResult> {
        match sql::parse_statement(sql_text)? {
            Statement::Select(select) => self.run_select(&select),
            _ => Err(RqsError::Syntax("query() accepts only SELECT".into())),
        }
    }

    fn run_select(&self, select: &sql::SelectStmt) -> RqsResult<QueryResult> {
        let mut metrics = QueryMetrics::default();
        let rel = exec::run_select(&self.catalog, select, &mut metrics)?;
        metrics.result_rows = rel.rows.len() as u64;
        Ok(QueryResult { columns: rel.columns, rows: rel.rows, affected: 0, metrics })
    }

    /// Renders the physical plan the optimizer would choose for a SELECT.
    pub fn explain(&self, sql_text: &str) -> RqsResult<String> {
        let Statement::Select(select) = sql::parse_statement(sql_text)? else {
            return Err(RqsError::Syntax("EXPLAIN accepts only SELECT".into()));
        };
        self.explain_select(&select)
    }

    fn explain_select(&self, select: &sql::SelectStmt) -> RqsResult<String> {
        let mut out = String::new();
        let resolved = plan::resolve(&self.catalog, &select.core)?;
        out.push_str(&plan::plan(resolved).to_string());
        for arm in &select.unions {
            out.push_str("UNION\n");
            let resolved = plan::resolve(&self.catalog, arm)?;
            out.push_str(&plan::plan(resolved).to_string());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Datum;

    #[test]
    fn ddl_dml_query_lifecycle() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        let r = db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap();
        assert_eq!(r.affected, 2);
        let r = db.execute("SELECT v.b FROM t v WHERE v.a = 2").unwrap();
        assert_eq!(r.rows, vec![vec![Datum::text("y")]]);
        assert_eq!(r.columns, ["v.b"]);
        let r = db.execute("DELETE FROM t").unwrap();
        assert_eq!(r.affected, 2);
        db.execute("DROP TABLE t").unwrap();
        assert!(db.execute("SELECT v.b FROM t v").is_err());
    }

    #[test]
    fn query_is_read_only() {
        let db = Database::new();
        assert!(db.query("CREATE TABLE t (a INT)").is_err());
    }

    #[test]
    fn constraints_flow_through_sql() {
        let mut db = Database::new();
        db.execute("CREATE TABLE dept (dno INT, fct TEXT, mgr INT, PRIMARY KEY (dno))").unwrap();
        db.execute(
            "CREATE TABLE empl (eno INT, nam TEXT, sal INT, dno INT,
             PRIMARY KEY (eno),
             CHECK (sal BETWEEN 10000 AND 90000),
             FOREIGN KEY (dno) REFERENCES dept (dno))",
        )
        .unwrap();
        db.execute("INSERT INTO dept VALUES (10, 'hq', 1)").unwrap();
        db.execute("INSERT INTO empl VALUES (1, 'smiley', 50000, 10)").unwrap();
        // Salary bound violation.
        assert!(db.execute("INSERT INTO empl VALUES (2, 'poor', 5000, 10)").is_err());
        // Key violation.
        assert!(db.execute("INSERT INTO empl VALUES (1, 'dup', 50000, 10)").is_err());
        // FK violation.
        assert!(db.execute("INSERT INTO empl VALUES (3, 'lost', 50000, 99)").is_err());
    }

    #[test]
    fn explain_renders_plan() {
        let mut db = Database::new();
        db.execute("CREATE TABLE empl (eno INT, nam TEXT, sal INT, dno INT)").unwrap();
        db.execute("CREATE TABLE dept (dno INT, fct TEXT, mgr INT)").unwrap();
        let text = db
            .explain("SELECT v1.nam FROM empl v1, dept v2 WHERE v1.dno = v2.dno")
            .unwrap();
        assert!(text.contains("HashJoin"));
        assert!(db.explain("DROP TABLE empl").is_err());
    }

    #[test]
    fn explain_union() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        let text = db
            .explain("SELECT v.a FROM t v UNION SELECT w.a FROM t w")
            .unwrap();
        assert!(text.contains("UNION"));
    }
}

#[cfg(test)]
mod explain_statement_tests {
    use super::*;

    #[test]
    fn explain_statement_returns_plan_rows() {
        let mut db = Database::new();
        db.execute("CREATE TABLE empl (eno INT, nam TEXT, sal INT, dno INT)").unwrap();
        db.execute("CREATE TABLE dept (dno INT, fct TEXT, mgr INT)").unwrap();
        let r = db
            .execute("EXPLAIN SELECT v1.nam FROM empl v1, dept v2 WHERE v1.dno = v2.dno")
            .unwrap();
        assert_eq!(r.columns, ["plan"]);
        let text: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
        assert!(text.iter().any(|l| l.contains("HashJoin")), "{text:?}");
        assert!(text.iter().any(|l| l.contains("Scan")), "{text:?}");
    }

    #[test]
    fn explain_requires_select() {
        let mut db = Database::new();
        assert!(db.execute("EXPLAIN DROP TABLE t").is_err());
    }
}

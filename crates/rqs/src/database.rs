//! The public facade: a database accepting SQL text.

use crate::backend::{InMemoryBackend, PagedBackend, Snapshot, StorageBackend};
use crate::catalog::{self, Catalog, Column, Table};
use crate::error::{RqsError, RqsResult};
use crate::exec::{self, QueryMetrics};
use crate::plan;
use crate::sql::{self, Statement};
use crate::value::Tuple;
use std::path::Path;

/// Result of executing a statement.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryResult {
    /// Output column labels (`alias.column`), empty for non-queries.
    pub columns: Vec<String>,
    /// Result rows, empty for non-queries.
    pub rows: Vec<Tuple>,
    /// Rows inserted/deleted for DML, 0 for queries.
    pub affected: usize,
    /// Work counters (queries only).
    pub metrics: QueryMetrics,
}

/// One named phase of a statement: how long it took and what I/O it
/// caused (physical counter deltas attributed to this phase).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSpan {
    /// Phase name: `parse`, `plan`, `exec`, or `commit` (the server
    /// prepends its own `locks` span).
    pub name: &'static str,
    /// Wall time spent in this phase, nanoseconds.
    pub nanos: u64,
    /// Buffer-pool misses during this phase.
    pub page_reads: u64,
    /// Buffer-pool hits during this phase.
    pub buffer_hits: u64,
    /// WAL frames appended during this phase.
    pub wal_appends: u64,
}

/// Per-statement span breakdown recorded by every [`Database::execute`]
/// call: the spans partition the statement's wall time, so their nanos
/// sum to (just under) `elapsed_nanos`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Spans in execution order.
    pub spans: Vec<TraceSpan>,
    /// Whole-statement wall time, nanoseconds (same value as
    /// [`QueryMetrics::elapsed_nanos`]).
    pub elapsed_nanos: u64,
}

/// What the backend-commit half of [`run_txn`] measured, handed back to
/// [`Database::execute`] through a thread-local: `run_txn` sees only a
/// `dyn StorageBackend`, several layers below the `Database` that
/// assembles the trace.
#[derive(Clone, Copy, Debug, Default)]
struct CommitProbe {
    nanos: u64,
    page_reads: u64,
    buffer_hits: u64,
    wal_appends: u64,
}

thread_local! {
    static LAST_COMMIT: std::cell::Cell<Option<CommitProbe>> =
        const { std::cell::Cell::new(None) };
}

/// Runs `f` as one backend transaction: begin, mutate, commit —
/// aborting (and rolling back pages + engine catalog) if any step
/// fails. This is what makes a multi-row INSERT, a predicated UPDATE
/// mid-index-maintenance, or a DML statement interrupted by an I/O
/// error atomic.
///
/// When a session transaction is already active (the shared server
/// resumed one around this statement), the statement simply joins it:
/// the session owns commit/abort, and an error making it out of here
/// tells the session to abort the whole transaction.
pub(crate) fn run_txn<T>(
    backend: &mut Box<dyn StorageBackend>,
    f: impl FnOnce(&mut dyn StorageBackend) -> RqsResult<T>,
) -> RqsResult<T> {
    if backend.in_txn() {
        return f(backend.as_mut());
    }
    backend.begin()?;
    match f(backend.as_mut()) {
        Ok(v) => {
            let io_before = backend.stats();
            let started = std::time::Instant::now();
            match backend.commit() {
                Ok(()) => {
                    let io_after = backend.stats();
                    LAST_COMMIT.set(Some(CommitProbe {
                        nanos: started.elapsed().as_nanos() as u64,
                        page_reads: io_after.page_reads - io_before.page_reads,
                        buffer_hits: io_after.buffer_hits - io_before.buffer_hits,
                        wal_appends: io_after.wal_appends - io_before.wal_appends,
                    }));
                    Ok(v)
                }
                Err(e) => {
                    backend.abort();
                    Err(e)
                }
            }
        }
        Err(e) => {
            backend.abort();
            Err(e)
        }
    }
}

/// A relational database addressed through SQL.
///
/// The schema lives in the [`Catalog`]; rows live in a pluggable
/// [`StorageBackend`]: [`Database::new`] keeps everything in RAM,
/// [`Database::paged`] runs on the paged engine (slotted heap pages
/// behind a buffer pool, B+-tree indexes), and [`Database::open_paged`]
/// persists it all to a file whose catalog is bootstrapped back from the
/// `system_tables`/`system_columns`/`system_indexes` pages on reopen.
pub struct Database {
    catalog: Catalog,
    backend: Box<dyn StorageBackend>,
    /// Work counters of the most recent `execute` call. Unlike the copy
    /// in [`QueryResult`], this is filled even when the statement
    /// returned an error — pages it touched before failing were real
    /// work and must not vanish from the account.
    last_metrics: QueryMetrics,
    /// Span breakdown of the most recent `execute` call (also filled on
    /// error, like `last_metrics`).
    last_trace: Trace,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("backend", &self.backend.name())
            .field("tables", &self.catalog.table_names().collect::<Vec<_>>())
            .finish()
    }
}

impl Database {
    /// An in-memory database (the original backend).
    pub fn new() -> Self {
        Database {
            catalog: Catalog::new(),
            backend: Box::new(InMemoryBackend::new()),
            last_metrics: QueryMetrics::default(),
            last_trace: Trace::default(),
        }
    }

    /// A database on the paged storage engine with a `pool_pages`-frame
    /// buffer pool, backed by anonymous in-memory pages.
    pub fn paged(pool_pages: usize) -> RqsResult<Self> {
        Ok(Database {
            catalog: Catalog::new(),
            backend: Box::new(PagedBackend::in_memory(pool_pages)?),
            last_metrics: QueryMetrics::default(),
            last_trace: Trace::default(),
        })
    }

    /// Opens (creating if missing) a file-backed paged database. Before
    /// anything else the engine replays the write-ahead log (committed
    /// statements survive a crash; torn tails are discarded), then
    /// schemas *and integrity constraints* are bootstrapped from the
    /// file's system-catalog pages — no DDL needs re-issuing.
    ///
    /// Dropping the database flushes resident dirty pages best-effort;
    /// every committed statement is already durable in the WAL, so even
    /// a lost flush only costs recovery time on the next open. Call
    /// [`Database::checkpoint`] to fold the log into the database file.
    pub fn open_paged(path: &Path, pool_pages: usize) -> RqsResult<Self> {
        Self::from_paged_backend(PagedBackend::open(path, pool_pages)?)
    }

    /// Builds a database over an already-opened paged backend,
    /// bootstrapping schemas and constraints from its system catalog
    /// (the tail of [`Database::open_paged`]; public so the
    /// crash-recovery harness can wire in fault-injecting backends).
    pub fn from_paged_backend(backend: PagedBackend) -> RqsResult<Self> {
        let mut catalog = Catalog::new();
        let engine = backend.engine();
        let names: Vec<String> = engine.table_names().map(str::to_owned).collect();
        for name in names {
            let info = engine.table(&name).map_err(RqsError::from)?;
            let columns: Vec<Column> = info
                .columns
                .iter()
                .map(|(col_name, ty)| Column {
                    name: col_name.clone(),
                    ty: crate::backend::from_col_type(*ty),
                })
                .collect();
            let mut table = Table::new(&name, columns);
            table.constraints = backend.stored_constraints(&name)?;
            catalog.create_table(table)?;
        }
        Ok(Database {
            catalog,
            backend: Box::new(backend),
            last_metrics: QueryMetrics::default(),
            last_trace: Trace::default(),
        })
    }

    /// A database over any backend implementation.
    pub fn with_backend(backend: Box<dyn StorageBackend>) -> Self {
        Database {
            catalog: Catalog::new(),
            backend,
            last_metrics: QueryMetrics::default(),
            last_trace: Trace::default(),
        }
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The storage backend behind this database.
    pub fn backend(&self) -> &dyn StorageBackend {
        self.backend.as_ref()
    }

    /// A read view over schema + storage for the planner/executor.
    pub fn snapshot(&self) -> Snapshot<'_> {
        Snapshot {
            catalog: &self.catalog,
            backend: self.backend.as_ref(),
        }
    }

    /// Inserts without constraint checks (bulk loads of pre-validated
    /// data; cyclic foreign keys make insert-time checking impossible).
    /// Call [`Database::validate_all`] afterwards.
    pub fn insert_unchecked(&mut self, table_name: &str, tuple: Tuple) -> RqsResult<()> {
        self.catalog.table(table_name)?.typecheck(&tuple)?;
        self.backend.insert(table_name, tuple)
    }

    /// Re-validates every constraint of every table against stored data.
    pub fn validate_all(&self) -> RqsResult<()> {
        catalog::validate_all(&self.catalog, self.backend.as_ref())
    }

    /// Writes dirty pages back (paged file-backed databases; a no-op for
    /// in-memory backends). The WAL is left alone; see
    /// [`Database::checkpoint`].
    pub fn flush(&self) -> RqsResult<()> {
        self.backend.flush()
    }

    /// Checkpoint: write dirty pages back *and* truncate the WAL, so
    /// the database file alone carries the whole state.
    pub fn checkpoint(&self) -> RqsResult<()> {
        self.backend.checkpoint()
    }

    /// Test/ops helper simulating a crash: drops the database without
    /// flushing buffered pages. Committed statements are recovered from
    /// the WAL on the next [`Database::open_paged`].
    pub fn crash(self) {
        let Database { backend, .. } = self;
        backend.crash();
    }

    // -----------------------------------------------------------------
    // Session transactions (the shared server's surface)
    // -----------------------------------------------------------------

    /// Opens a session-scoped transaction spanning several `execute`
    /// calls and returns its id (suspended; resume it per statement).
    /// DDL is not supported inside session transactions — the schema
    /// registry has no per-transaction rollback (the server enforces
    /// this before executing).
    pub fn begin_session_txn(&mut self) -> RqsResult<u64> {
        self.backend.begin_session()
    }

    /// Makes an open session transaction active for the next statement.
    pub fn resume_session_txn(&mut self, id: u64) -> RqsResult<()> {
        self.backend.resume_session(id)
    }

    /// Suspends the active session transaction after a statement.
    pub fn suspend_session_txn(&mut self) {
        self.backend.suspend_session();
    }

    /// Commits an open session transaction.
    pub fn commit_session_txn(&mut self, id: u64) -> RqsResult<()> {
        self.backend.commit_session(id)
    }

    /// Rolls an open session transaction back.
    pub fn abort_session_txn(&mut self, id: u64) {
        self.backend.abort_session(id);
    }

    /// Whether the backend can lock individual rows (see
    /// [`crate::backend::StorageBackend::supports_row_locks`]).
    pub fn supports_row_locks(&self) -> bool {
        self.backend.supports_row_locks()
    }

    /// Installs (`Some`) or clears (`None`) the per-row lock hook the
    /// server wraps around a DML statement.
    pub fn set_row_lock_hook(&mut self, hook: Option<crate::backend::RowLockHook>) {
        self.backend.set_row_lock_hook(hook);
    }

    /// Whether reads run against MVCC snapshots instead of the lock
    /// manager (see
    /// [`crate::backend::StorageBackend::supports_snapshot_reads`]).
    pub fn supports_snapshot_reads(&self) -> bool {
        self.backend.supports_snapshot_reads()
    }

    /// Toggles snapshot reads on backends that support them. Toggle
    /// only between statements, with no session transactions open.
    pub fn set_snapshot_reads(&mut self, on: bool) {
        self.backend.set_snapshot_reads(on);
    }

    /// Executes one SQL statement. Mutating statements run as one WAL
    /// transaction on paged backends: either every effect (rows, index
    /// postings, catalog mutations) commits durably, or none do.
    ///
    /// Every call — successful or not — leaves its work counters
    /// (phase timings, page I/O deltas) in
    /// [`Database::last_statement_metrics`].
    pub fn execute(&mut self, sql_text: &str) -> RqsResult<QueryResult> {
        let started = std::time::Instant::now();
        let io_before = self.backend.stats();
        LAST_COMMIT.set(None);
        let parsed = sql::parse_statement(sql_text);
        let parse_nanos = started.elapsed().as_nanos() as u64;
        let exec_started = std::time::Instant::now();
        // Autocommit statements read against a snapshot cut here; a
        // session inside BEGIN reads through its transaction's snapshot
        // instead (cut at BEGIN). No-ops without snapshot support.
        let autocommit = !self.backend.in_txn();
        if autocommit {
            self.backend.open_statement_snapshot();
        }
        let mut outcome = match parsed {
            Ok(stmt) => self.run_statement(stmt),
            Err(e) => Err(e),
        };
        if autocommit {
            // Unconditional close (error paths included) releases the
            // prior versions only this statement kept alive.
            self.backend.close_statement_snapshot();
        }
        let exec_nanos = exec_started.elapsed().as_nanos() as u64;
        // Backfill I/O deltas and timings into BOTH outcomes: a failed
        // statement still reports the pages it touched before erroring.
        let io_after = self.backend.stats();
        let mut err_metrics = QueryMetrics::default();
        let metrics = match &mut outcome {
            Ok(result) => &mut result.metrics,
            Err(_) => &mut err_metrics,
        };
        metrics.parse_nanos = parse_nanos;
        metrics.exec_nanos = exec_nanos;
        metrics.elapsed_nanos = started.elapsed().as_nanos() as u64;
        metrics.wal_appends = io_after.wal_appends - io_before.wal_appends;
        metrics.wal_bytes = io_after.wal_bytes - io_before.wal_bytes;
        if metrics.page_reads == 0 && metrics.buffer_hits == 0 {
            // DML statements: page counters were not filled by a SELECT.
            metrics.page_reads = io_after.page_reads - io_before.page_reads;
            metrics.buffer_hits = io_after.buffer_hits - io_before.buffer_hits;
        }
        self.last_trace = Self::build_trace(metrics, &io_before, &io_after, LAST_COMMIT.take());
        self.last_metrics = metrics.clone();
        outcome
    }

    /// Assembles the span breakdown of one statement. `parse` and
    /// `plan` are pure CPU; `commit` carries what [`run_txn`] probed
    /// around `backend.commit()` (absent for queries and statements
    /// joining a session transaction); `exec` is everything else, so
    /// the spans partition the statement.
    fn build_trace(
        metrics: &QueryMetrics,
        io_before: &storage::PoolStats,
        io_after: &storage::PoolStats,
        commit: Option<CommitProbe>,
    ) -> Trace {
        let commit = commit.unwrap_or_default();
        let total_reads = io_after.page_reads - io_before.page_reads;
        let total_hits = io_after.buffer_hits - io_before.buffer_hits;
        let total_appends = io_after.wal_appends - io_before.wal_appends;
        let mut spans = vec![
            TraceSpan {
                name: "parse",
                nanos: metrics.parse_nanos,
                ..Default::default()
            },
            TraceSpan {
                name: "plan",
                nanos: metrics.plan_nanos.min(metrics.exec_nanos),
                ..Default::default()
            },
            TraceSpan {
                name: "exec",
                nanos: metrics
                    .exec_nanos
                    .saturating_sub(metrics.plan_nanos)
                    .saturating_sub(commit.nanos),
                page_reads: total_reads.saturating_sub(commit.page_reads),
                buffer_hits: total_hits.saturating_sub(commit.buffer_hits),
                wal_appends: total_appends.saturating_sub(commit.wal_appends),
            },
            TraceSpan {
                name: "commit",
                nanos: commit.nanos,
                page_reads: commit.page_reads,
                buffer_hits: commit.buffer_hits,
                wal_appends: commit.wal_appends,
            },
        ];
        // A span that did nothing is noise, but exec always renders so
        // every trace has at least parse + exec anchors.
        spans.retain(|s| {
            s.name == "exec"
                || s.name == "parse"
                || s.nanos > 0
                || s.page_reads > 0
                || s.buffer_hits > 0
                || s.wal_appends > 0
        });
        Trace {
            spans,
            elapsed_nanos: metrics.elapsed_nanos,
        }
    }

    /// Work counters of the most recent [`Database::execute`] call,
    /// including calls that returned an error (successful calls also
    /// carry a copy in their [`QueryResult`]).
    pub fn last_statement_metrics(&self) -> &QueryMetrics {
        &self.last_metrics
    }

    /// Span breakdown of the most recent [`Database::execute`] call
    /// (parse / plan / exec / commit with per-span I/O deltas), filled
    /// even when the statement returned an error.
    pub fn last_statement_trace(&self) -> &Trace {
        &self.last_trace
    }

    /// Dispatches one parsed statement (the body of [`Database::execute`],
    /// split out so timing and I/O accounting wrap every path).
    fn run_statement(&mut self, stmt: Statement) -> RqsResult<QueryResult> {
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                constraints,
            } => {
                if self.catalog.has_table(&name) {
                    return Err(RqsError::DuplicateTable(name));
                }
                let cols: Vec<Column> = columns
                    .into_iter()
                    .map(|(name, ty)| Column { name, ty })
                    .collect();
                let mut table = Table::new(&name, cols);
                table.constraints = constraints;
                run_txn(&mut self.backend, |b| {
                    b.create_table(&name, &table.columns)?;
                    b.persist_constraints(&name, &table.constraints)
                })?;
                // Only after the backend committed: the schema entry can
                // no longer end up pointing at rolled-back storage.
                self.catalog.create_table(table)?;
                Ok(QueryResult::default())
            }
            Statement::CreateIndex { table, column } => {
                let col = self
                    .catalog
                    .table(&table)?
                    .column_index(&column)
                    .ok_or_else(|| RqsError::UnknownColumn(format!("{table}.{column}")))?;
                // Not wrapped in a transaction: the paged backend bulk-
                // builds the tree unlogged and transacts only the
                // catalog registration (see StorageEngine::create_index).
                self.backend.create_index(&table, col)?;
                Ok(QueryResult::default())
            }
            Statement::Insert { table, rows } => {
                let affected = rows.len();
                let catalog = &self.catalog;
                run_txn(&mut self.backend, |b| {
                    for row in rows {
                        // Probe mode inside the transaction: the check
                        // judges the latest committed state plus this
                        // statement's own earlier rows, and conflicts
                        // retryably on a concurrent writer's pending
                        // rows instead of reporting a violation against
                        // data that may roll back.
                        b.set_constraint_probe(true);
                        let checked = catalog::check_insert(catalog, b, &table, &row);
                        b.set_constraint_probe(false);
                        checked?;
                        b.insert(&table, row)?;
                    }
                    Ok(())
                })?;
                Ok(QueryResult {
                    affected,
                    ..Default::default()
                })
            }
            Statement::Delete {
                table,
                filter: None,
            } => {
                // Truncation fast path (the front-end resetting a whole
                // intermediate relation): still a single backend
                // truncate, but no longer *unchecked* — a parent table
                // that referencing children still point at refuses to
                // vanish, matching predicated DELETE's restrict rule.
                self.catalog.table(&table)?;
                self.backend.set_constraint_probe(true);
                let checked = crate::dml::check_truncate_constraints(
                    &self.catalog,
                    self.backend.as_ref(),
                    &table,
                );
                self.backend.set_constraint_probe(false);
                checked?;
                let affected = run_txn(&mut self.backend, |b| b.truncate(&table))?;
                Ok(QueryResult {
                    affected,
                    ..Default::default()
                })
            }
            Statement::Delete {
                table,
                filter: Some(conds),
            } => {
                let affected =
                    crate::dml::execute_delete(&self.catalog, &mut self.backend, &table, &conds)?;
                Ok(QueryResult {
                    affected,
                    ..Default::default()
                })
            }
            Statement::Update {
                table,
                sets,
                filter,
            } => {
                let affected = crate::dml::execute_update(
                    &self.catalog,
                    &mut self.backend,
                    &table,
                    &sets,
                    &filter,
                )?;
                Ok(QueryResult {
                    affected,
                    ..Default::default()
                })
            }
            Statement::DropTable { name } => {
                self.catalog.table(&name)?;
                run_txn(&mut self.backend, |b| b.drop_table(&name))?;
                // After the backend committed the drop, unregister the
                // schema; a failed/aborted drop leaves both sides intact.
                self.catalog.drop_table(&name)?;
                Ok(QueryResult::default())
            }
            Statement::Select(select) => self.run_select(&select),
            Statement::Explain { analyze, stmt } => self.run_explain(analyze, *stmt),
        }
    }

    /// `EXPLAIN [ANALYZE]` dispatch: renders the plan of the inner
    /// statement as text rows (and, under ANALYZE, actually runs it and
    /// annotates the plan with measured work).
    fn run_explain(&mut self, analyze: bool, stmt: Statement) -> RqsResult<QueryResult> {
        let text = match (stmt, analyze) {
            (Statement::Select(select), false) => self.explain_select(&select)?,
            (Statement::Select(select), true) => self.explain_analyze_select(&select)?,
            (Statement::Update { table, filter, .. }, false) => crate::dml::explain_dml(
                &self.catalog,
                self.backend.as_ref(),
                "Update",
                &table,
                &filter,
            )?,
            (
                Statement::Delete {
                    table,
                    filter: Some(conds),
                },
                false,
            ) => crate::dml::explain_dml(
                &self.catalog,
                self.backend.as_ref(),
                "Delete",
                &table,
                &conds,
            )?,
            (
                Statement::Delete {
                    table,
                    filter: None,
                },
                false,
            ) => {
                // The truncation fast path never scans: one backend call.
                self.catalog.table(&table)?;
                format!("Delete {table} [unfiltered]\n  Truncate\n")
            }
            (
                Statement::Update {
                    table,
                    sets,
                    filter,
                },
                true,
            ) => {
                // Render the plan BEFORE mutating: the access path must
                // describe the data the statement actually saw.
                let text = crate::dml::explain_dml(
                    &self.catalog,
                    self.backend.as_ref(),
                    "Update",
                    &table,
                    &filter,
                )?;
                self.analyze_dml(text, |db| {
                    crate::dml::execute_update(&db.catalog, &mut db.backend, &table, &sets, &filter)
                })?
            }
            (
                Statement::Delete {
                    table,
                    filter: Some(conds),
                },
                true,
            ) => {
                let text = crate::dml::explain_dml(
                    &self.catalog,
                    self.backend.as_ref(),
                    "Delete",
                    &table,
                    &conds,
                )?;
                self.analyze_dml(text, |db| {
                    crate::dml::execute_delete(&db.catalog, &mut db.backend, &table, &conds)
                })?
            }
            _ => {
                return Err(RqsError::Syntax(
                    "EXPLAIN ANALYZE accepts only SELECT, UPDATE, or predicated DELETE".into(),
                ))
            }
        };
        Ok(QueryResult {
            columns: vec!["plan".into()],
            rows: text
                .lines()
                .map(|l| vec![crate::value::Datum::text(l)])
                .collect(),
            ..Default::default()
        })
    }

    /// Runs a DML statement under `EXPLAIN ANALYZE` and appends the
    /// same `Actual:` lines SELECT gets (with `rows` = rows affected;
    /// DML has no executor row counters, so `rows_scanned`/`scans`
    /// report 0). The mutation really commits — ANALYZE executes.
    fn analyze_dml(
        &mut self,
        mut text: String,
        run: impl FnOnce(&mut Self) -> RqsResult<usize>,
    ) -> RqsResult<String> {
        let io_before = self.backend.stats();
        let run_started = std::time::Instant::now();
        let affected = run(self)?;
        let elapsed_us = run_started.elapsed().as_micros();
        let io_after = self.backend.stats();
        if !text.ends_with('\n') {
            text.push('\n');
        }
        text.push_str(&format!(
            "Actual: rows={affected} elapsed_us={elapsed_us}\n"
        ));
        text.push_str(&format!(
            "Actual: page_reads={} buffer_hits={} rows_scanned=0 scans=0\n",
            io_after.page_reads - io_before.page_reads,
            io_after.buffer_hits - io_before.buffer_hits,
        ));
        Ok(text)
    }

    /// Runs the SELECT, then renders its plan annotated with measured
    /// totals (`EXPLAIN ANALYZE`). The `Actual:` lines use stable
    /// `key=value` tokens so tests and tools can parse them.
    fn explain_analyze_select(&self, select: &sql::SelectStmt) -> RqsResult<String> {
        let run_started = std::time::Instant::now();
        let result = self.run_select(select)?;
        let elapsed_us = run_started.elapsed().as_micros();
        let mut text = self.explain_select(select)?;
        if !text.ends_with('\n') {
            text.push('\n');
        }
        let m = &result.metrics;
        text.push_str(&format!(
            "Actual: rows={} elapsed_us={elapsed_us}\n",
            result.rows.len()
        ));
        text.push_str(&format!(
            "Actual: page_reads={} buffer_hits={} rows_scanned={} scans={}\n",
            m.page_reads, m.buffer_hits, m.rows_scanned, m.scans
        ));
        Ok(text)
    }

    /// Executes a SELECT without requiring `&mut self` — the parallel
    /// read path. Many threads may call this at once on a shared
    /// database: each opens its own statement snapshot and reads the
    /// backend through `&self`, so SELECTs scale across cores instead
    /// of queueing on the statement latch. Timings land in the returned
    /// metrics (there is no `last_statement_*` slot to fill without
    /// `&mut self`).
    pub fn query(&self, sql_text: &str) -> RqsResult<QueryResult> {
        let started = std::time::Instant::now();
        match sql::parse_statement(sql_text)? {
            Statement::Select(select) => {
                let parse_nanos = started.elapsed().as_nanos() as u64;
                let exec_started = std::time::Instant::now();
                let autocommit = !self.backend.in_txn();
                if autocommit {
                    self.backend.open_statement_snapshot();
                }
                let out = self.run_select(&select);
                if autocommit {
                    self.backend.close_statement_snapshot();
                }
                let mut out = out?;
                out.metrics.parse_nanos = parse_nanos;
                out.metrics.exec_nanos = exec_started.elapsed().as_nanos() as u64;
                out.metrics.elapsed_nanos = started.elapsed().as_nanos() as u64;
                Ok(out)
            }
            _ => Err(RqsError::Syntax("query() accepts only SELECT".into())),
        }
    }

    fn run_select(&self, select: &sql::SelectStmt) -> RqsResult<QueryResult> {
        let mut metrics = QueryMetrics::default();
        let snap = self.snapshot();
        let io_before = self.backend.stats();
        let rel = exec::run_select(&snap, select, &mut metrics)?;
        let io_after = self.backend.stats();
        metrics.page_reads = io_after.page_reads - io_before.page_reads;
        metrics.buffer_hits = io_after.buffer_hits - io_before.buffer_hits;
        metrics.result_rows = rel.rows.len() as u64;
        Ok(QueryResult {
            columns: rel.columns,
            rows: rel.rows,
            affected: 0,
            metrics,
        })
    }

    /// Renders the physical plan the optimizer would choose for a
    /// SELECT, or the access path a predicated UPDATE/DELETE would use.
    pub fn explain(&self, sql_text: &str) -> RqsResult<String> {
        match sql::parse_statement(sql_text)? {
            Statement::Select(select) => self.explain_select(&select),
            Statement::Update { table, filter, .. } => crate::dml::explain_dml(
                &self.catalog,
                self.backend.as_ref(),
                "Update",
                &table,
                &filter,
            ),
            Statement::Delete {
                table,
                filter: Some(conds),
            } => crate::dml::explain_dml(
                &self.catalog,
                self.backend.as_ref(),
                "Delete",
                &table,
                &conds,
            ),
            Statement::Delete {
                table,
                filter: None,
            } => {
                self.catalog.table(&table)?;
                Ok(format!("Delete {table} [unfiltered]\n  Truncate\n"))
            }
            _ => Err(RqsError::Syntax(
                "EXPLAIN accepts only SELECT, UPDATE, or DELETE".into(),
            )),
        }
    }

    fn explain_select(&self, select: &sql::SelectStmt) -> RqsResult<String> {
        let mut out = String::new();
        let snap = self.snapshot();
        let resolved = plan::resolve(&snap, &select.core)?;
        out.push_str(&plan::plan(resolved).to_string());
        for arm in &select.unions {
            out.push_str("UNION\n");
            let resolved = plan::resolve(&snap, arm)?;
            out.push_str(&plan::plan(resolved).to_string());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Datum;

    /// Both backends must pass the same lifecycle; the differential test
    /// in `tests/` covers far more ground.
    fn backends() -> Vec<Database> {
        vec![Database::new(), Database::paged(8).unwrap()]
    }

    #[test]
    fn ddl_dml_query_lifecycle() {
        for mut db in backends() {
            db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
            let r = db
                .execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
                .unwrap();
            assert_eq!(r.affected, 2);
            let r = db.execute("SELECT v.b FROM t v WHERE v.a = 2").unwrap();
            assert_eq!(r.rows, vec![vec![Datum::text("y")]]);
            assert_eq!(r.columns, ["v.b"]);
            let r = db.execute("DELETE FROM t").unwrap();
            assert_eq!(r.affected, 2);
            db.execute("DROP TABLE t").unwrap();
            assert!(db.execute("SELECT v.b FROM t v").is_err(), "{db:?}");
        }
    }

    #[test]
    fn update_and_predicated_delete_lifecycle() {
        for mut db in backends() {
            db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
            db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z'), (4, 'y')")
                .unwrap();
            let r = db.execute("UPDATE t SET b = 'upd' WHERE a > 2").unwrap();
            assert_eq!(r.affected, 2, "{db:?}");
            // Row 4's b was just rewritten to 'upd', so only row 2 matches.
            let r = db.execute("UPDATE t SET a = a + 10 WHERE b = 'y'").unwrap();
            assert_eq!(r.affected, 1);
            let r = db
                .execute("SELECT v.a, v.b FROM t v WHERE v.a > 10")
                .unwrap();
            assert_eq!(r.rows, vec![vec![Datum::Int(12), Datum::text("y")]]);
            let r = db
                .execute("DELETE FROM t WHERE a >= 12 AND b = 'y'")
                .unwrap();
            assert_eq!(r.affected, 1);
            assert_eq!(db.execute("SELECT v.a FROM t v").unwrap().rows.len(), 3);
            // No-match predicates affect nothing.
            assert_eq!(
                db.execute("UPDATE t SET b = 'n' WHERE a = 99")
                    .unwrap()
                    .affected,
                0
            );
            assert_eq!(db.execute("DELETE FROM t WHERE 1 = 2").unwrap().affected, 0);
            // Unknown tables/columns error.
            assert!(db.execute("UPDATE nosuch SET a = 1").is_err());
            assert!(db.execute("UPDATE t SET zzz = 1").is_err());
            assert!(db.execute("DELETE FROM t WHERE zzz = 1").is_err());
            // Type errors are static.
            assert!(matches!(
                db.execute("UPDATE t SET b = 1"),
                Err(RqsError::Type(_))
            ));
            assert!(matches!(
                db.execute("UPDATE t SET a = a + b"),
                Err(RqsError::Type(_))
            ));
        }
    }

    #[test]
    fn update_rechecks_constraints_on_changed_columns() {
        for mut db in backends() {
            db.execute("CREATE TABLE dept (dno INT, fct TEXT, PRIMARY KEY (dno))")
                .unwrap();
            db.execute(
                "CREATE TABLE empl (eno INT, nam TEXT, sal INT, dno INT,
                 PRIMARY KEY (eno),
                 CHECK (sal BETWEEN 10000 AND 90000),
                 FOREIGN KEY (dno) REFERENCES dept (dno))",
            )
            .unwrap();
            db.execute("INSERT INTO dept VALUES (1, 'hq'), (2, 'lab')")
                .unwrap();
            db.execute(
                "INSERT INTO empl VALUES (1, 'a', 20000, 1), (2, 'b', 30000, 1), (3, 'c', 40000, 2)",
            )
            .unwrap();
            // CHECK bound on the assigned column.
            assert!(matches!(
                db.execute("UPDATE empl SET sal = sal + 80000 WHERE eno = 1"),
                Err(RqsError::ConstraintViolation(_))
            ));
            // Key collision with a surviving row...
            assert!(db.execute("UPDATE empl SET eno = 2 WHERE eno = 1").is_err());
            // ...and between two updated rows.
            assert!(db
                .execute("UPDATE empl SET eno = 9 WHERE sal < 35000")
                .is_err());
            // Moving a key out of the way is fine.
            db.execute("UPDATE empl SET eno = 10 WHERE eno = 1")
                .unwrap();
            // FK child re-check on the assigned column.
            assert!(db
                .execute("UPDATE empl SET dno = 99 WHERE eno = 2")
                .is_err());
            db.execute("UPDATE empl SET dno = 2 WHERE eno = 2").unwrap();
            // Restrict: rewriting a referenced parent key is refused...
            assert!(db.execute("UPDATE dept SET dno = 5 WHERE dno = 2").is_err());
            // ...but a non-referenced parent column changes freely.
            db.execute("UPDATE dept SET fct = 'ops' WHERE dno = 2")
                .unwrap();
            // Restrict: deleting a referenced parent row is refused.
            assert!(matches!(
                db.execute("DELETE FROM dept WHERE dno = 2"),
                Err(RqsError::ConstraintViolation(_))
            ));
            // Unreference it, then the delete goes through.
            db.execute("DELETE FROM empl WHERE dno = 2").unwrap();
            let r = db.execute("DELETE FROM dept WHERE dno = 2").unwrap();
            assert_eq!(r.affected, 1);
            // State is intact after all the rejected statements.
            assert_eq!(
                db.execute("SELECT v.eno FROM empl v").unwrap().rows.len(),
                1
            );
        }
    }

    #[test]
    fn failed_update_is_atomic_across_backends() {
        // The predicate matches several rows; one of the replacements
        // violates the CHECK. Nothing may stick.
        for mut db in backends() {
            db.execute("CREATE TABLE t (a INT, CHECK (a BETWEEN 0 AND 100))")
                .unwrap();
            db.execute("CREATE INDEX ON t (a)").unwrap();
            db.execute("INSERT INTO t VALUES (10), (50), (90)").unwrap();
            assert!(db.execute("UPDATE t SET a = a + 20").is_err());
            let mut rows = db.execute("SELECT v.a FROM t v").unwrap().rows;
            rows.sort();
            assert_eq!(
                rows,
                vec![
                    vec![Datum::Int(10)],
                    vec![Datum::Int(50)],
                    vec![Datum::Int(90)]
                ]
            );
            for k in [10i64, 50, 90] {
                assert_eq!(
                    db.backend()
                        .index_lookup("t", 0, &Datum::Int(k))
                        .unwrap()
                        .unwrap()
                        .len(),
                    1,
                    "posting for {k} intact"
                );
            }
        }
    }

    #[test]
    fn indexed_update_and_delete_ride_the_index_on_paged() {
        let mut db = Database::paged(8).unwrap();
        db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        for i in 0..2000 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'row{i}')"))
                .unwrap();
        }
        let scan = db.execute("UPDATE t SET b = 'u1' WHERE a = 1234").unwrap();
        assert_eq!(scan.affected, 1);
        db.execute("CREATE INDEX ON t (a)").unwrap();
        let indexed = db.execute("UPDATE t SET b = 'u2' WHERE a = 1234").unwrap();
        assert_eq!(indexed.affected, 1);
        assert!(
            indexed.metrics.page_reads + indexed.metrics.buffer_hits
                < scan.metrics.page_reads + scan.metrics.buffer_hits,
            "indexed update touched {}+{} pages, full-scan update {}+{}",
            indexed.metrics.page_reads,
            indexed.metrics.buffer_hits,
            scan.metrics.page_reads,
            scan.metrics.buffer_hits,
        );
        // Ranged DELETE rides index_range the same way.
        let removed = db
            .execute("DELETE FROM t WHERE a >= 100 AND a < 120")
            .unwrap();
        assert_eq!(removed.affected, 20);
        assert_eq!(
            db.execute("SELECT v.a FROM t v WHERE v.a >= 100 AND v.a < 120")
                .unwrap()
                .rows
                .len(),
            0
        );
    }

    #[test]
    fn large_update_exceeding_pool_succeeds_on_paged() {
        // Successor of the retired `large_update_exceeding_pool_fails_
        // cleanly_on_paged` parity exception: under the old no-steal
        // protocol a whole-table UPDATE wider than the buffer pool
        // failed with a pool-exhausted `Internal` error where the
        // in-memory backend succeeded. With steal/undo logging the
        // statement's write set spills to disk and the two backends
        // produce identical results — no pinned exception remains.
        let mut mem = Database::new();
        let mut paged = Database::paged(8).unwrap();
        for db in [&mut mem, &mut paged] {
            db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
            db.execute("CREATE INDEX ON t (a)").unwrap();
            for i in 0..2000 {
                db.execute(&format!("INSERT INTO t VALUES ({i}, 'row{i}')"))
                    .unwrap();
            }
            let r = db.execute("UPDATE t SET b = 'rewritten'").unwrap();
            assert_eq!(r.affected, 2000, "{db:?}");
        }
        let sorted = |db: &Database| {
            let mut rows = db.query("SELECT v.a, v.b FROM t v").unwrap().rows;
            rows.sort();
            rows
        };
        assert_eq!(sorted(&mem), sorted(&paged), "backends must agree");
        assert_eq!(sorted(&paged).len(), 2000);
        for probe in [0i64, 999, 1999] {
            assert_eq!(
                paged
                    .query(&format!("SELECT v.b FROM t v WHERE v.a = {probe}"))
                    .unwrap()
                    .rows,
                vec![vec![Datum::text("rewritten")]],
                "index must survive the stolen rewrite"
            );
        }
        // And the session keeps working at full size afterwards.
        let r = paged
            .execute("UPDATE t SET b = 'again' WHERE a < 100")
            .unwrap();
        assert_eq!(r.affected, 100);
    }

    #[test]
    fn bare_delete_refuses_to_truncate_a_referenced_parent() {
        for mut db in backends() {
            db.execute("CREATE TABLE dept (dno INT, PRIMARY KEY (dno))")
                .unwrap();
            db.execute(
                "CREATE TABLE empl (eno INT, dno INT, PRIMARY KEY (eno), \
                 FOREIGN KEY (dno) REFERENCES dept (dno))",
            )
            .unwrap();
            db.execute("INSERT INTO dept VALUES (1), (2)").unwrap();
            db.execute("INSERT INTO empl VALUES (10, 1)").unwrap();
            // Truncating the parent would orphan empl(10, 1): refused,
            // with restrict semantics matching predicated DELETE.
            assert!(matches!(
                db.execute("DELETE FROM dept"),
                Err(RqsError::ConstraintViolation(_))
            ));
            assert_eq!(
                db.execute("SELECT v.dno FROM dept v").unwrap().rows.len(),
                2
            );
            // The child truncates freely; then the parent follows.
            assert_eq!(db.execute("DELETE FROM empl").unwrap().affected, 1);
            assert_eq!(db.execute("DELETE FROM dept").unwrap().affected, 2);
            // Self-referential tables truncate trivially (their own
            // rows vanish with the referenced keys).
            db.execute(
                "CREATE TABLE tree (id INT, parent INT, PRIMARY KEY (id), \
                 FOREIGN KEY (parent) REFERENCES tree (id))",
            )
            .unwrap();
            // Self-rows need the unchecked bulk-load path (a row cannot
            // reference itself through the insert-time probe).
            db.insert_unchecked("tree", vec![Datum::Int(1), Datum::Int(1)])
                .unwrap();
            db.insert_unchecked("tree", vec![Datum::Int(2), Datum::Int(1)])
                .unwrap();
            db.validate_all().unwrap();
            assert_eq!(db.execute("DELETE FROM tree").unwrap().affected, 2);
        }
    }

    #[test]
    fn dml_survives_paged_reopen() {
        let dir = std::env::temp_dir().join(format!("rqs-db-dml-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dml.rqs");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(storage::engine::wal_path(&path));
        {
            let mut db = Database::open_paged(&path, 8).unwrap();
            db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
            db.execute("CREATE INDEX ON t (a)").unwrap();
            for i in 0..100 {
                db.execute(&format!("INSERT INTO t VALUES ({i}, 'v')"))
                    .unwrap();
            }
            db.execute("UPDATE t SET b = 'kept' WHERE a < 10").unwrap();
            db.execute("DELETE FROM t WHERE a >= 50").unwrap();
            // Crash, not flush: the DML must replay from the WAL.
            db.crash();
        }
        let db = Database::open_paged(&path, 8).unwrap();
        let r = db.query("SELECT v.a FROM t v").unwrap();
        assert_eq!(r.rows.len(), 50);
        let r = db.query("SELECT v.a FROM t v WHERE v.b = 'kept'").unwrap();
        assert_eq!(r.rows.len(), 10);
        let r = db.query("SELECT v.b FROM t v WHERE v.a = 7").unwrap();
        assert_eq!(r.rows, vec![vec![Datum::text("kept")]]);
        assert_eq!(r.metrics.rows_scanned, 1, "index survives the DML + reopen");
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_file(storage::engine::wal_path(&path));
    }

    #[test]
    fn query_is_read_only() {
        let db = Database::new();
        assert!(db.query("CREATE TABLE t (a INT)").is_err());
    }

    #[test]
    fn constraints_flow_through_sql() {
        for mut db in backends() {
            db.execute("CREATE TABLE dept (dno INT, fct TEXT, mgr INT, PRIMARY KEY (dno))")
                .unwrap();
            db.execute(
                "CREATE TABLE empl (eno INT, nam TEXT, sal INT, dno INT,
                 PRIMARY KEY (eno),
                 CHECK (sal BETWEEN 10000 AND 90000),
                 FOREIGN KEY (dno) REFERENCES dept (dno))",
            )
            .unwrap();
            db.execute("INSERT INTO dept VALUES (10, 'hq', 1)").unwrap();
            db.execute("INSERT INTO empl VALUES (1, 'smiley', 50000, 10)")
                .unwrap();
            // Salary bound violation.
            assert!(db
                .execute("INSERT INTO empl VALUES (2, 'poor', 5000, 10)")
                .is_err());
            // Key violation.
            assert!(db
                .execute("INSERT INTO empl VALUES (1, 'dup', 50000, 10)")
                .is_err());
            // FK violation.
            assert!(db
                .execute("INSERT INTO empl VALUES (3, 'lost', 50000, 99)")
                .is_err());
        }
    }

    #[test]
    fn explain_renders_plan() {
        let mut db = Database::new();
        db.execute("CREATE TABLE empl (eno INT, nam TEXT, sal INT, dno INT)")
            .unwrap();
        db.execute("CREATE TABLE dept (dno INT, fct TEXT, mgr INT)")
            .unwrap();
        let text = db
            .explain("SELECT v1.nam FROM empl v1, dept v2 WHERE v1.dno = v2.dno")
            .unwrap();
        assert!(text.contains("HashJoin"));
        assert!(db.explain("DROP TABLE empl").is_err());
    }

    #[test]
    fn explain_union() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        let text = db
            .explain("SELECT v.a FROM t v UNION SELECT w.a FROM t w")
            .unwrap();
        assert!(text.contains("UNION"));
    }

    #[test]
    fn paged_database_counts_page_io() {
        let mut db = Database::paged(8).unwrap();
        db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        for i in 0..2000 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'row{i}')"))
                .unwrap();
        }
        let r = db
            .execute("SELECT v.a FROM t v WHERE v.b = 'row999'")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Datum::Int(999)]]);
        assert!(
            r.metrics.page_reads > 0,
            "full scan larger than the pool must fault pages: {:?}",
            r.metrics
        );
        // In-memory databases report zero page I/O.
        let mut mem = Database::new();
        mem.execute("CREATE TABLE t (a INT)").unwrap();
        mem.execute("INSERT INTO t VALUES (1)").unwrap();
        let r = mem.execute("SELECT v.a FROM t v").unwrap();
        assert_eq!((r.metrics.page_reads, r.metrics.buffer_hits), (0, 0));
    }

    #[test]
    fn paged_index_point_lookup_reads_fewer_pages_than_scan() {
        let mut db = Database::paged(8).unwrap();
        db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        for i in 0..2000 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'row{i}')"))
                .unwrap();
        }
        let scan = db.execute("SELECT v.b FROM t v WHERE v.a = 1234").unwrap();
        db.execute("CREATE INDEX ON t (a)").unwrap();
        let indexed = db.execute("SELECT v.b FROM t v WHERE v.a = 1234").unwrap();
        assert_eq!(scan.rows, indexed.rows);
        assert!(
            indexed.metrics.page_reads < scan.metrics.page_reads,
            "indexed lookup read {} pages, scan {}",
            indexed.metrics.page_reads,
            scan.metrics.page_reads
        );
        assert_eq!(indexed.metrics.rows_scanned, 1);
    }

    #[test]
    fn paged_index_range_scan_reads_fewer_pages_than_full_scan() {
        let mut db = Database::paged(8).unwrap();
        db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        for i in 0..2000 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'row{i}')"))
                .unwrap();
        }
        let q = "SELECT v.b FROM t v WHERE v.a >= 100 AND v.a < 120";
        let scan = db.execute(q).unwrap();
        db.execute("CREATE INDEX ON t (a)").unwrap();
        let ranged = db.execute(q).unwrap();
        assert_eq!(scan.rows, ranged.rows);
        assert_eq!(ranged.rows.len(), 20);
        assert_eq!(
            ranged.metrics.rows_scanned, 20,
            "range cursor must touch only the matching keys"
        );
        assert!(
            ranged.metrics.page_reads < scan.metrics.page_reads,
            "range read {} pages, full scan {}",
            ranged.metrics.page_reads,
            scan.metrics.page_reads
        );
        // One-sided and contradictory ranges behave too.
        let r = db.execute("SELECT v.b FROM t v WHERE v.a > 1997").unwrap();
        assert_eq!(r.rows.len(), 2);
        let r = db
            .execute("SELECT v.b FROM t v WHERE v.a > 10 AND v.a < 5")
            .unwrap();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn range_restrictions_agree_across_backends() {
        let queries = [
            "SELECT v.a FROM t v WHERE v.a < 7",
            "SELECT v.a FROM t v WHERE v.a >= 3 AND v.a <= 12",
            "SELECT v.a FROM t v WHERE v.a > 3 AND v.a < 4",
            "SELECT v.a FROM t v WHERE v.a > 18 AND v.b = 'x19'",
            "SELECT v.a FROM t v WHERE v.a >= 5 AND v.a >= 9 AND v.a < 11",
        ];
        let mut results: Vec<Vec<QueryResult>> = Vec::new();
        for mut db in [Database::new(), Database::paged(8).unwrap()] {
            db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
            for i in 0..20 {
                db.execute(&format!("INSERT INTO t VALUES ({i}, 'x{i}')"))
                    .unwrap();
            }
            db.execute("CREATE INDEX ON t (a)").unwrap();
            results.push(queries.iter().map(|q| db.execute(q).unwrap()).collect());
        }
        for (q, (mem, paged)) in queries.iter().zip(results[0].iter().zip(&results[1])) {
            assert_eq!(mem.rows, paged.rows, "backends diverged on {q}");
        }
    }

    #[test]
    fn dml_reports_wal_cost_queries_do_not() {
        let mut db = Database::paged(8).unwrap();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        let r = db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        assert!(
            r.metrics.wal_appends >= 3,
            "multi-row insert must log begin+image(s)+commit: {:?}",
            r.metrics
        );
        assert!(r.metrics.wal_bytes > 0);
        let q = db.execute("SELECT v.a FROM t v").unwrap();
        assert_eq!((q.metrics.wal_appends, q.metrics.wal_bytes), (0, 0));
        // In-memory databases log nothing.
        let mut mem = Database::new();
        mem.execute("CREATE TABLE t (a INT)").unwrap();
        let r = mem.execute("INSERT INTO t VALUES (1)").unwrap();
        assert_eq!((r.metrics.wal_appends, r.metrics.wal_bytes), (0, 0));
    }

    #[test]
    fn failed_multi_row_insert_is_atomic() {
        // The third row violates the CHECK (and then a PK probe): on
        // both backends the whole statement rolls back — the first two
        // rows must not survive, and indexes must agree.
        for mut db in [Database::new(), Database::paged(8).unwrap()] {
            db.execute("CREATE TABLE t (a INT, PRIMARY KEY (a), CHECK (a BETWEEN 0 AND 10))")
                .unwrap();
            db.execute("CREATE INDEX ON t (a)").unwrap();
            assert!(db.execute("INSERT INTO t VALUES (1), (2), (99)").is_err());
            assert!(db.execute("INSERT INTO t VALUES (3), (4), (3)").is_err());
            let rows = db.execute("SELECT v.a FROM t v").unwrap().rows;
            assert!(rows.is_empty(), "partial statement must not survive");
            for k in [1i64, 2, 3, 4] {
                assert_eq!(
                    db.backend()
                        .index_lookup("t", 0, &Datum::Int(k))
                        .unwrap()
                        .unwrap(),
                    Vec::<crate::value::Tuple>::new(),
                    "rolled-back posting for {k} must be gone"
                );
            }
            // The statement after a rollback works normally.
            db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
            assert_eq!(db.execute("SELECT v.a FROM t v").unwrap().rows.len(), 2);
        }
    }

    #[test]
    fn open_paged_reboots_catalog_from_file() {
        let dir = std::env::temp_dir().join(format!("rqs-db-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reopen.rqs");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(storage::engine::wal_path(&path));
        {
            let mut db = Database::open_paged(&path, 8).unwrap();
            db.execute("CREATE TABLE empl (eno INT, nam TEXT, sal INT, dno INT)")
                .unwrap();
            db.execute("CREATE INDEX ON empl (nam)").unwrap();
            for i in 0..300 {
                db.execute(&format!("INSERT INTO empl VALUES ({i}, 'e{i}', 20000, 1)"))
                    .unwrap();
            }
            db.flush().unwrap();
        }
        let db = Database::open_paged(&path, 8).unwrap();
        assert!(db.catalog().has_table("empl"));
        let r = db
            .query("SELECT v.eno FROM empl v WHERE v.nam = 'e250'")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Datum::Int(250)]]);
        assert_eq!(r.metrics.rows_scanned, 1, "index must survive reopen");
        let r = db.query("SELECT v.eno FROM empl v").unwrap();
        assert_eq!(r.rows.len(), 300);
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_file(storage::engine::wal_path(&path));
    }

    #[test]
    fn unchecked_insert_and_validate_all_flow() {
        for mut db in backends() {
            db.execute("CREATE TABLE t (a INT, PRIMARY KEY (a), CHECK (a BETWEEN 0 AND 10))")
                .unwrap();
            db.insert_unchecked("t", vec![Datum::Int(3)]).unwrap();
            db.insert_unchecked("t", vec![Datum::Int(3)]).unwrap();
            assert!(matches!(
                db.validate_all(),
                Err(RqsError::ConstraintViolation(_))
            ));
            // Type errors are still caught eagerly.
            assert!(db.insert_unchecked("t", vec![Datum::text("x")]).is_err());
        }
    }
}

#[cfg(test)]
mod explain_statement_tests {
    use super::*;

    #[test]
    fn explain_statement_returns_plan_rows() {
        let mut db = Database::new();
        db.execute("CREATE TABLE empl (eno INT, nam TEXT, sal INT, dno INT)")
            .unwrap();
        db.execute("CREATE TABLE dept (dno INT, fct TEXT, mgr INT)")
            .unwrap();
        let r = db
            .execute("EXPLAIN SELECT v1.nam FROM empl v1, dept v2 WHERE v1.dno = v2.dno")
            .unwrap();
        assert_eq!(r.columns, ["plan"]);
        let text: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
        assert!(text.iter().any(|l| l.contains("HashJoin")), "{text:?}");
        assert!(text.iter().any(|l| l.contains("Scan")), "{text:?}");
    }

    #[test]
    fn explain_requires_select() {
        let mut db = Database::new();
        assert!(db.execute("EXPLAIN DROP TABLE t").is_err());
    }
}

//! RQS error type.

use std::fmt;

pub type RqsResult<T> = std::result::Result<T, RqsError>;

/// Errors surfaced by the relational query system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RqsError {
    /// SQL lexical/syntactic error.
    Syntax(String),
    /// Reference to an unknown table.
    UnknownTable(String),
    /// Reference to an unknown column or range variable.
    UnknownColumn(String),
    /// A table with this name already exists.
    DuplicateTable(String),
    /// Type mismatch between a column and a value or comparison.
    Type(String),
    /// An integrity constraint rejected a modification.
    ConstraintViolation(String),
    /// A concurrent transaction holds a resource this statement needs
    /// (lock conflict, wait-die abort, or lock timeout). The statement
    /// — and any explicit transaction it ran in — was rolled back; the
    /// client may retry.
    Conflict(String),
    /// Internal invariant failure (a bug in the engine).
    Internal(String),
}

impl fmt::Display for RqsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RqsError::Syntax(m) => write!(f, "SQL syntax error: {m}"),
            RqsError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            RqsError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            RqsError::DuplicateTable(t) => write!(f, "table already exists: {t}"),
            RqsError::Type(m) => write!(f, "type error: {m}"),
            RqsError::ConstraintViolation(m) => write!(f, "integrity constraint violated: {m}"),
            RqsError::Conflict(m) => write!(f, "transaction conflict: {m}"),
            RqsError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for RqsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(RqsError::UnknownTable("empl".into())
            .to_string()
            .contains("empl"));
        assert!(RqsError::ConstraintViolation("sal out of bounds".into())
            .to_string()
            .contains("sal out of bounds"));
    }
}

//! Query planning: name resolution, condition classification, greedy join
//! ordering and access-path selection.
//!
//! The paper's division of labour leaves "the kind of query optimization
//! achieved by reordering PROLOG goals … to the existing query processor
//! of the DBMS" (§1). This module is that query processor: it picks scan
//! order and join methods but cannot remove redundant joins — eliminating
//! those is exactly the front-end optimizer's job, which is what the
//! benchmarks measure.

use crate::backend::Snapshot;
use crate::error::{RqsError, RqsResult};
use crate::sql::ast::{CmpOp, ColumnRef, Condition, Scalar, SelectCore, SelectStmt};
use crate::value::Datum;
use std::fmt;

/// A resolved range variable of the FROM clause.
#[derive(Clone, Debug, PartialEq)]
pub struct VarInfo {
    pub alias: String,
    pub table: String,
    pub width: usize,
    pub cardinality: usize,
}

/// A single-variable restriction `var.col op value`, pushed to the scan.
#[derive(Clone, Debug, PartialEq)]
pub struct Restriction {
    pub var: usize,
    pub col: usize,
    pub op: CmpOp,
    pub value: Datum,
}

/// A two-variable condition `lvar.lcol op rvar.rcol`.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinCond {
    pub lvar: usize,
    pub lcol: usize,
    pub op: CmpOp,
    pub rvar: usize,
    pub rcol: usize,
}

/// A `[NOT] IN` subquery condition.
#[derive(Clone, Debug, PartialEq)]
pub struct SubqueryCond {
    pub var: usize,
    pub col: usize,
    pub negated: bool,
    pub stmt: SelectStmt,
}

/// A fully resolved single SELECT block.
#[derive(Clone, Debug, PartialEq)]
pub struct ResolvedCore {
    pub distinct: bool,
    pub vars: Vec<VarInfo>,
    /// Output columns as `(var, col)`.
    pub items: Vec<(usize, usize)>,
    pub restrictions: Vec<Restriction>,
    pub joins: Vec<JoinCond>,
    pub subqueries: Vec<SubqueryCond>,
}

/// How one range variable is brought into the pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum JoinMethod {
    /// First variable: plain scan.
    Initial,
    /// Hash join on the given equijoin conditions (probe side = new var).
    Hash {
        eq: Vec<JoinCond>,
        extra: Vec<JoinCond>,
    },
    /// Nested loop with arbitrary conditions (possibly empty = product).
    NestedLoop { conds: Vec<JoinCond> },
}

/// One step of the left-deep pipeline.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinStep {
    pub var: usize,
    pub method: JoinMethod,
}

/// The physical plan: a left-deep join pipeline plus post-filters.
#[derive(Clone, Debug, PartialEq)]
pub struct PhysicalPlan {
    pub core: ResolvedCore,
    pub steps: Vec<JoinStep>,
}

impl PhysicalPlan {
    /// Number of join operators (steps beyond the first scan).
    pub fn join_count(&self) -> usize {
        self.steps.len().saturating_sub(1)
    }
}

/// Resolves a SELECT core against the catalog and storage snapshot.
pub fn resolve(snap: &Snapshot, core: &SelectCore) -> RqsResult<ResolvedCore> {
    let mut vars = Vec::new();
    for (table_name, alias) in &core.from {
        let table = snap.catalog.table(table_name)?;
        if vars.iter().any(|v: &VarInfo| &v.alias == alias) {
            return Err(RqsError::Syntax(format!(
                "duplicate range variable {alias}"
            )));
        }
        vars.push(VarInfo {
            alias: alias.clone(),
            table: table_name.clone(),
            width: table.arity(),
            cardinality: snap.backend.row_count(table_name)?,
        });
    }
    let lookup = |cref: &ColumnRef| -> RqsResult<(usize, usize)> {
        let var = vars
            .iter()
            .position(|v| v.alias == cref.var)
            .ok_or_else(|| RqsError::UnknownColumn(format!("{cref} (unknown variable)")))?;
        let table = snap.catalog.table(&vars[var].table)?;
        let col = table
            .column_index(&cref.column)
            .ok_or_else(|| RqsError::UnknownColumn(cref.to_string()))?;
        Ok((var, col))
    };

    let items = core
        .items
        .iter()
        .map(&lookup)
        .collect::<RqsResult<Vec<_>>>()?;

    let mut restrictions = Vec::new();
    let mut joins = Vec::new();
    let mut subqueries = Vec::new();
    for cond in &core.conds {
        match cond {
            Condition::Compare { lhs, op, rhs } => match (lhs, rhs) {
                (Scalar::Column(l), Scalar::Column(r)) => {
                    // Column-column comparisons all become join
                    // conditions; when both sides name the same variable
                    // the executor evaluates it as a restriction over
                    // one tuple.
                    let (lvar, lcol) = lookup(l)?;
                    let (rvar, rcol) = lookup(r)?;
                    joins.push(JoinCond {
                        lvar,
                        lcol,
                        op: *op,
                        rvar,
                        rcol,
                    });
                }
                (Scalar::Column(l), Scalar::Literal(v)) => {
                    let (var, col) = lookup(l)?;
                    restrictions.push(Restriction {
                        var,
                        col,
                        op: *op,
                        value: v.clone(),
                    });
                }
                (Scalar::Literal(v), Scalar::Column(r)) => {
                    let (var, col) = lookup(r)?;
                    restrictions.push(Restriction {
                        var,
                        col,
                        op: op.flip(),
                        value: v.clone(),
                    });
                }
                (Scalar::Literal(a), Scalar::Literal(b)) => {
                    // Constant condition: keep as a degenerate restriction on
                    // var 0 only if true is undecidable; evaluate eagerly.
                    if !op.eval(a.total_cmp(b)) {
                        // Always-false: encode as impossible restriction.
                        restrictions.push(Restriction {
                            var: 0,
                            col: usize::MAX,
                            op: *op,
                            value: a.clone(),
                        });
                    }
                    // Always-true conditions just vanish.
                }
            },
            Condition::InSubquery {
                col,
                negated,
                subquery,
            } => {
                let (var, col) = lookup(col)?;
                subqueries.push(SubqueryCond {
                    var,
                    col,
                    negated: *negated,
                    stmt: (**subquery).clone(),
                });
            }
        }
    }
    Ok(ResolvedCore {
        distinct: core.distinct,
        vars,
        items,
        restrictions,
        joins,
        subqueries,
    })
}

/// Estimated cardinality of `var` after pushed-down restrictions.
fn estimate(core: &ResolvedCore, var: usize) -> usize {
    let mut est = core.vars[var].cardinality.max(1);
    for r in &core.restrictions {
        if r.var == var {
            est = match r.op {
                CmpOp::Eq => (est / 10).max(1),
                CmpOp::Ne => est,
                _ => (est / 3).max(1),
            };
        }
    }
    est
}

/// Greedy left-deep join ordering: start with the cheapest variable, then
/// repeatedly attach the cheapest variable reachable through an equijoin;
/// fall back to the cheapest remaining one (cross product) when the join
/// graph is disconnected.
pub fn plan(core: ResolvedCore) -> PhysicalPlan {
    let n = core.vars.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut chosen: Vec<usize> = Vec::new();
    let mut steps: Vec<JoinStep> = Vec::new();

    while !remaining.is_empty() {
        let pick = if chosen.is_empty() {
            *remaining
                .iter()
                .min_by_key(|&&v| estimate(&core, v))
                .expect("non-empty remaining")
        } else {
            // Prefer equijoin-connected vars.
            let connected: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|&v| {
                    core.joins.iter().any(|j| {
                        j.op == CmpOp::Eq
                            && ((j.lvar == v && chosen.contains(&j.rvar))
                                || (j.rvar == v && chosen.contains(&j.lvar)))
                    })
                })
                .collect();
            let pool = if connected.is_empty() {
                &remaining
            } else {
                &connected
            };
            *pool
                .iter()
                .min_by_key(|&&v| estimate(&core, v))
                .expect("non-empty pool")
        };

        let method = if chosen.is_empty() {
            JoinMethod::Initial
        } else {
            // Conditions now fully bound: both sides among chosen ∪ {pick},
            // at least one side = pick.
            let mut eq = Vec::new();
            let mut extra = Vec::new();
            for j in &core.joins {
                let touches_pick = j.lvar == pick || j.rvar == pick;
                let other_bound = (j.lvar == pick || chosen.contains(&j.lvar))
                    && (j.rvar == pick || chosen.contains(&j.rvar));
                if touches_pick && other_bound {
                    if j.op == CmpOp::Eq && j.lvar != j.rvar {
                        eq.push(j.clone());
                    } else {
                        extra.push(j.clone());
                    }
                }
            }
            if eq.is_empty() {
                JoinMethod::NestedLoop { conds: extra }
            } else {
                JoinMethod::Hash { eq, extra }
            }
        };
        steps.push(JoinStep { var: pick, method });
        remaining.retain(|&v| v != pick);
        chosen.push(pick);
    }
    PhysicalPlan { core, steps }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Project [{} item(s)]{}",
            self.core.items.len(),
            if self.core.distinct { " DISTINCT" } else { "" }
        )?;
        for (depth, step) in self.steps.iter().enumerate().rev() {
            let v = &self.core.vars[step.var];
            let indent = "  ".repeat(self.steps.len() - depth);
            let restr = self
                .core
                .restrictions
                .iter()
                .filter(|r| r.var == step.var)
                .count();
            match &step.method {
                JoinMethod::Initial => writeln!(
                    f,
                    "{indent}Scan {} {} [{} restriction(s)]",
                    v.table, v.alias, restr
                )?,
                JoinMethod::Hash { eq, extra } => writeln!(
                    f,
                    "{indent}HashJoin {} {} [{} key(s), {} extra] [{} restriction(s)]",
                    v.table,
                    v.alias,
                    eq.len(),
                    extra.len(),
                    restr
                )?,
                JoinMethod::NestedLoop { conds } => writeln!(
                    f,
                    "{indent}NestedLoop {} {} [{} cond(s)] [{} restriction(s)]",
                    v.table,
                    v.alias,
                    conds.len(),
                    restr
                )?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::sql::parse_statement;
    use crate::sql::Statement;

    fn db_with_empdep() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE empl (eno INT, nam TEXT, sal INT, dno INT)")
            .unwrap();
        db.execute("CREATE TABLE dept (dno INT, fct TEXT, mgr INT)")
            .unwrap();
        db
    }

    fn resolve_select(db: &Database, sql: &str) -> RqsResult<ResolvedCore> {
        let Statement::Select(s) = parse_statement(sql).unwrap() else {
            panic!("not a select")
        };
        resolve(&db.snapshot(), &s.core)
    }

    #[test]
    fn resolves_columns_and_classifies_conditions() {
        let db = db_with_empdep();
        let core = resolve_select(
            &db,
            "SELECT v1.nam FROM empl v1, dept v2
             WHERE (v1.dno = v2.dno) AND (v1.sal < 40000) AND (100 < v1.sal)",
        )
        .unwrap();
        assert_eq!(core.vars.len(), 2);
        assert_eq!(core.joins.len(), 1);
        assert_eq!(core.restrictions.len(), 2);
        // Flipped literal-on-left restriction.
        assert_eq!(core.restrictions[1].op, CmpOp::Gt);
    }

    #[test]
    fn unknown_names_rejected() {
        let db = db_with_empdep();
        assert!(matches!(
            resolve_select(&db, "SELECT v9.nam FROM empl v1"),
            Err(RqsError::UnknownColumn(_))
        ));
        assert!(matches!(
            resolve_select(&db, "SELECT v1.zzz FROM empl v1"),
            Err(RqsError::UnknownColumn(_))
        ));
        assert!(matches!(
            resolve_select(&db, "SELECT v1.nam FROM nosuch v1"),
            Err(RqsError::UnknownTable(_))
        ));
    }

    #[test]
    fn duplicate_alias_rejected() {
        let db = db_with_empdep();
        assert!(resolve_select(&db, "SELECT v1.nam FROM empl v1, dept v1").is_err());
    }

    #[test]
    fn plan_is_left_deep_and_covers_all_vars() {
        let db = db_with_empdep();
        let core = resolve_select(
            &db,
            "SELECT v1.nam FROM empl v1, dept v2, empl v3
             WHERE (v1.dno = v2.dno) AND (v2.mgr = v3.eno)",
        )
        .unwrap();
        let plan = plan(core);
        assert_eq!(plan.steps.len(), 3);
        assert_eq!(plan.join_count(), 2);
        assert!(matches!(plan.steps[0].method, JoinMethod::Initial));
        // Both subsequent steps join on equality → hash joins.
        assert!(plan.steps[1..]
            .iter()
            .all(|s| matches!(s.method, JoinMethod::Hash { .. })));
    }

    #[test]
    fn disconnected_vars_become_products() {
        let db = db_with_empdep();
        let core = resolve_select(&db, "SELECT v1.nam FROM empl v1, dept v2").unwrap();
        let plan = plan(core);
        assert!(matches!(
            plan.steps[1].method,
            JoinMethod::NestedLoop { ref conds } if conds.is_empty()
        ));
    }

    #[test]
    fn inequality_join_uses_nested_loop() {
        let db = db_with_empdep();
        let core = resolve_select(
            &db,
            "SELECT v1.nam FROM empl v1, empl v2 WHERE v1.sal < v2.sal",
        )
        .unwrap();
        let plan = plan(core);
        assert!(
            matches!(plan.steps[1].method, JoinMethod::NestedLoop { ref conds } if conds.len() == 1)
        );
    }

    #[test]
    fn display_shows_pipeline() {
        let db = db_with_empdep();
        let core = resolve_select(
            &db,
            "SELECT v1.nam FROM empl v1, dept v2 WHERE v1.dno = v2.dno",
        )
        .unwrap();
        let text = plan(core).to_string();
        assert!(text.contains("Scan"));
        assert!(text.contains("HashJoin"));
    }
}

//! Fault-injection crash-recovery suite for the paged storage engine.
//!
//! Every test here follows the same shape: run a workload against a
//! file-backed database, kill it at an adversarial moment (drop without
//! flushing, torn WAL tail, injected I/O failures, power-cut
//! mid-checkpoint), reopen, and assert the three recovery guarantees:
//!
//! 1. every committed statement is intact;
//! 2. every uncommitted/aborted statement left no trace;
//! 3. heap rows and B+-tree postings agree, and integrity constraints
//!    are still enforced without re-issuing DDL.
//!
//! The expected state is computed by replaying the committed prefix of
//! the same statements on the in-memory backend — the differential
//! oracle `tests/backend_differential.rs` already holds to account.

use proptest::prelude::*;
use rqs::value::Tuple;
use rqs::{Database, Datum, PagedBackend};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use storage::engine::wal_path;
use storage::Fault;

static NEXT_DB: AtomicUsize = AtomicUsize::new(0);

/// A fresh database file path (plus clean WAL) for one scenario.
fn temp_db(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rqs-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!(
        "{tag}-{}.rqs",
        NEXT_DB.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(wal_path(&path));
    path
}

fn cleanup(path: &Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(wal_path(path));
}

/// Buffer-pool frames for the scenarios, `RQS_TEST_POOL_FRAMES`
/// overriding `default`. CI's pool-pressure step pins this to the
/// engine's 8-frame floor so whole-table statements must steal
/// (spill uncommitted pages with undo logging) at every crash point.
fn pool_frames(default: usize) -> usize {
    std::env::var("RQS_TEST_POOL_FRAMES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Multi-row INSERT statements filling `table` with `rows` padded rows
/// (~11 per 4 KiB page), so whole-table DML dirties far more pages
/// than a small pool holds.
fn wide_fill(table: &str, rows: usize, fill: &str) -> Vec<String> {
    (0..rows.div_ceil(40))
        .map(|chunk| {
            let vals: Vec<String> = (chunk * 40..((chunk + 1) * 40).min(rows))
                .map(|i| format!("({i}, '{}')", fill.repeat(350)))
                .collect();
            format!("INSERT INTO {table} VALUES {}", vals.join(", "))
        })
        .collect()
}

/// Sorted rows of every table, keyed by table name.
fn full_state(db: &Database) -> BTreeMap<String, Vec<Tuple>> {
    let mut out = BTreeMap::new();
    for name in db.catalog().table_names() {
        let mut rows = db.backend().scan(name).unwrap();
        rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        out.insert(name.to_owned(), rows);
    }
    out
}

/// Asserts that every index on `table` agrees exactly with the heap:
/// each stored row is found through the index, and the index returns
/// nothing extra.
fn assert_heap_index_agree(db: &Database, table: &str, cols: &[usize]) {
    if !db.catalog().has_table(table) {
        return; // crashed before the table's DDL committed
    }
    let rows = db.backend().scan(table).unwrap();
    for &col in cols {
        if !db.backend().has_index(table, col) {
            continue;
        }
        let mut by_key: BTreeMap<String, usize> = BTreeMap::new();
        for row in &rows {
            *by_key.entry(format!("{:?}", row[col])).or_default() += 1;
        }
        for row in &rows {
            let hits = db
                .backend()
                .index_lookup(table, col, &row[col])
                .unwrap()
                .expect("index exists");
            assert_eq!(
                hits.len(),
                by_key[&format!("{:?}", row[col])],
                "{table}.{col}: postings for {:?} disagree with the heap",
                row[col]
            );
            assert!(
                hits.iter().all(|h| h[col] == row[col]),
                "{table}.{col}: index returned a foreign key value"
            );
        }
    }
}

/// The scripted workload: DDL with constraints, an index, several
/// insert statements (single- and multi-row), a delete, and a
/// create/drop pair. Every statement succeeds when run in order.
fn scripted_workload() -> Vec<String> {
    let mut script = vec![
        "CREATE TABLE dept (dno INT, fct TEXT, PRIMARY KEY (dno))".to_string(),
        "CREATE TABLE empl (eno INT, nam TEXT, sal INT, dno INT, \
         PRIMARY KEY (eno), \
         CHECK (sal BETWEEN 10000 AND 90000), \
         FOREIGN KEY (dno) REFERENCES dept (dno))"
            .to_string(),
        "INSERT INTO dept VALUES (1, 'hq'), (2, 'lab'), (3, 'field')".to_string(),
        "CREATE INDEX ON empl (nam)".to_string(),
        "CREATE INDEX ON empl (dno)".to_string(),
    ];
    for batch in 0..4 {
        let rows: Vec<String> = (0..25)
            .map(|i| {
                let eno = batch * 25 + i;
                format!("({eno}, 'e{eno}', {}, {})", 10_000 + eno, eno % 3 + 1)
            })
            .collect();
        script.push(format!("INSERT INTO empl VALUES {}", rows.join(", ")));
    }
    script.extend([
        // Predicated DML: in-place rewrites (indexed and not), a rewrite
        // of an indexed column, and range deletes — every crash point in
        // here must recover the exact committed prefix.
        "UPDATE empl SET sal = sal + 500 WHERE dno = 1".to_string(),
        "UPDATE empl SET nam = 'renamed', sal = 25000 WHERE eno = 10".to_string(),
        "UPDATE empl SET dno = 2 WHERE dno = 3".to_string(),
        "DELETE FROM empl WHERE eno >= 90 AND eno < 95".to_string(),
        "DELETE FROM empl WHERE nam = 'renamed'".to_string(),
        "CREATE TABLE scratch (x INT)".to_string(),
        "INSERT INTO scratch VALUES (1), (2), (3)".to_string(),
        "UPDATE scratch SET x = x + 10 WHERE x > 1".to_string(),
        "DELETE FROM scratch WHERE x = 12".to_string(),
        "DELETE FROM scratch".to_string(),
        "INSERT INTO scratch VALUES (9)".to_string(),
        "DROP TABLE scratch".to_string(),
        "INSERT INTO empl VALUES (100, 'late', 20000, 2)".to_string(),
    ]);
    // Steal territory: a table of ~11 padded pages, then whole-table
    // rewrites whose write sets exceed the 8-frame pool — every crash
    // point in here exercises steal, commit-time redo of stolen pages,
    // and recovery undo.
    script.push("CREATE TABLE wide (k INT, pad TEXT)".to_string());
    script.extend(wide_fill("wide", 120, "a"));
    script.push(format!("UPDATE wide SET pad = '{}'", "b".repeat(355)));
    script.push("DELETE FROM wide WHERE k >= 60".to_string());
    script.push(format!(
        "UPDATE wide SET pad = '{}' WHERE k < 60",
        "c".repeat(340)
    ));
    script
}

/// After reopening a database whose script prefix reached past the
/// `empl` DDL, the constraints must still bite without re-issuing DDL.
fn assert_constraints_still_enforced(db: &mut Database) {
    if !db.catalog().has_table("empl") {
        return;
    }
    assert!(
        !db.catalog().table("empl").unwrap().constraints.is_empty(),
        "constraints must be bootstrapped from the system catalog"
    );
    // CHECK violation.
    assert!(
        db.execute("INSERT INTO empl VALUES (9000, 'poor', 500, 1)")
            .is_err(),
        "salary bound must survive reopen"
    );
    // FK violation.
    assert!(
        db.execute("INSERT INTO empl VALUES (9001, 'lost', 20000, 99)")
            .is_err(),
        "foreign key must survive reopen"
    );
    if let Some(row) = db.backend().scan("empl").unwrap().first().cloned() {
        // Key violation against a row that actually exists.
        let Datum::Int(eno) = row[0] else {
            panic!("empl.eno is INT")
        };
        assert!(
            db.execute(&format!("INSERT INTO empl VALUES ({eno}, 'dup', 20000, 1)"))
                .is_err(),
            "primary key must survive reopen"
        );
    }
    // A valid insert still goes through (then gets removed so state
    // comparisons stay untouched — but callers compare *before* this).
}

/// Tentpole scenario: for every crash point in the scripted workload,
/// the reopened database equals the in-memory replay of exactly the
/// committed prefix, with heap/index agreement and live constraints.
#[test]
fn every_crash_point_recovers_the_committed_prefix() {
    let script = scripted_workload();
    let pool = pool_frames(8);
    for crash_at in 0..=script.len() {
        let path = temp_db("script");
        let mut db = Database::open_paged(&path, pool).unwrap();
        let mut oracle = Database::new();
        for stmt in &script[..crash_at] {
            let a = db.execute(stmt).expect("scripted statement succeeds");
            let b = oracle.execute(stmt).expect("oracle statement succeeds");
            assert_eq!(a.affected, b.affected, "affected rows diverged on {stmt}");
        }
        // Crash: buffered pages are lost, only the WAL survives.
        db.crash();
        let mut recovered = Database::open_paged(&path, pool).unwrap();
        assert_eq!(
            full_state(&recovered),
            full_state(&oracle),
            "state diverged after crash at statement {crash_at}"
        );
        assert_heap_index_agree(&recovered, "empl", &[1, 3]);
        assert_constraints_still_enforced(&mut recovered);
        cleanup(&path);
    }
}

/// A torn final frame (the crash hit mid-append, before the commit
/// record was durable) must roll back exactly the final statement.
#[test]
fn torn_final_frame_drops_only_the_last_transaction() {
    let path = temp_db("torn");
    let mut db = Database::open_paged(&path, 16).unwrap();
    db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
    db.execute("CREATE INDEX ON t (a)").unwrap();
    for i in 0..5 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, 'row{i}')"))
            .unwrap();
    }
    db.crash();
    // Tear bytes off the end of the log: the final statement's Commit
    // frame (and part of its page image) never made it to disk.
    let wal = wal_path(&path);
    let len = std::fs::metadata(&wal).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    file.set_len(len - 40).unwrap();
    drop(file);

    let db = Database::open_paged(&path, 16).unwrap();
    let rows = db.backend().scan("t").unwrap();
    assert_eq!(rows.len(), 4, "exactly the torn statement must be gone");
    for i in 0..4i64 {
        assert!(rows.iter().any(|r| r[0] == Datum::Int(i)));
    }
    assert_heap_index_agree(&db, "t", &[0]);
    cleanup(&path);
}

/// Garbage appended after the last good frame (a torn write that got
/// as far as scribbling) is discarded without losing committed data.
#[test]
fn trailing_garbage_after_last_frame_is_ignored() {
    let path = temp_db("garbage");
    let mut db = Database::open_paged(&path, 16).unwrap();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    for i in 0..5 {
        db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    db.crash();
    let wal = wal_path(&path);
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&[0xab; 100]);
    std::fs::write(&wal, &bytes).unwrap();

    let db = Database::open_paged(&path, 16).unwrap();
    assert_eq!(db.backend().scan("t").unwrap().len(), 5);
    cleanup(&path);
}

/// Regression (ROADMAP known issue): an I/O error between the heap
/// insert and its index maintenance must abort the whole statement —
/// no stranded rows, no dangling postings — and the session stays up.
#[test]
fn write_fault_mid_statement_strands_nothing() {
    let path = temp_db("fault");
    let fault = Fault::new();
    let backend = PagedBackend::open_with_fault(&path, 8, fault.clone()).unwrap();
    let mut db = Database::from_paged_backend(backend).unwrap();
    db.execute("CREATE TABLE t (a INT, pad TEXT)").unwrap();
    db.execute("CREATE INDEX ON t (a)").unwrap();
    let pad = "p".repeat(300);
    let mut committed = 0i64;
    for _ in 0..120 {
        db.execute(&format!("INSERT INTO t VALUES ({committed}, '{pad}')"))
            .unwrap();
        committed += 1;
    }
    // March the injected failure through every durable-write offset a
    // statement can hit: heap-page eviction, B+-tree split allocation,
    // WAL append, WAL sync.
    let mut failures = 0;
    for budget in 0..40 {
        fault.fail_after_writes(budget);
        let attempt = db.execute(&format!("INSERT INTO t VALUES ({committed}, '{pad}')"));
        fault.heal();
        match attempt {
            Ok(_) => committed += 1,
            Err(_) => failures += 1,
        }
    }
    assert!(failures > 0, "fault injection never fired");
    let rows = db.backend().scan("t").unwrap();
    assert_eq!(rows.len(), committed as usize, "no stranded or lost rows");
    assert_heap_index_agree(&db, "t", &[0]);
    // Committed statements survive a crash on top of it all.
    db.crash();
    let db = Database::open_paged(&path, 8).unwrap();
    assert_eq!(db.backend().scan("t").unwrap().len(), committed as usize);
    assert_heap_index_agree(&db, "t", &[0]);
    cleanup(&path);
}

/// A power cut mid-checkpoint (some pages written back, log not yet
/// truncated) must not lose anything: the log replays over the
/// half-written file.
#[test]
fn power_cut_mid_checkpoint_recovers_everything() {
    let path = temp_db("ckpt");
    let fault = Fault::new();
    let backend = PagedBackend::open_with_fault(&path, 16, fault.clone()).unwrap();
    let mut db = Database::from_paged_backend(backend).unwrap();
    db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
    db.execute("CREATE INDEX ON t (b)").unwrap();
    for i in 0..60 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, 'v{i}')"))
            .unwrap();
    }
    // Let a handful of page write-backs through, then cut the power.
    fault.fail_after_writes(3);
    assert!(db.checkpoint().is_err(), "checkpoint must hit the fault");
    db.crash();

    let db = Database::open_paged(&path, 16).unwrap();
    assert_eq!(db.backend().scan("t").unwrap().len(), 60);
    assert_heap_index_agree(&db, "t", &[1]);
    // A completed checkpoint afterwards leaves a self-contained file.
    db.checkpoint().unwrap();
    assert_eq!(std::fs::metadata(wal_path(&path)).unwrap().len(), 8);
    db.crash();
    let db = Database::open_paged(&path, 16).unwrap();
    assert_eq!(db.backend().scan("t").unwrap().len(), 60);
    cleanup(&path);
}

/// Satellite: constraints persisted in the system catalog are enforced
/// after a clean reopen — no DDL re-issued, both the flush path and the
/// crash path.
#[test]
fn constraints_survive_reopen_without_ddl() {
    for crash in [false, true] {
        let path = temp_db("constraints");
        {
            let mut db = Database::open_paged(&path, 16).unwrap();
            db.execute("CREATE TABLE dept (dno INT, fct TEXT, PRIMARY KEY (dno))")
                .unwrap();
            db.execute(
                "CREATE TABLE empl (eno INT, nam TEXT, sal INT, dno INT, \
                 PRIMARY KEY (eno), \
                 CHECK (sal BETWEEN 10000 AND 90000), \
                 FOREIGN KEY (dno) REFERENCES dept (dno))",
            )
            .unwrap();
            db.execute("INSERT INTO dept VALUES (1, 'hq')").unwrap();
            db.execute("INSERT INTO empl VALUES (1, 'smiley', 50000, 1)")
                .unwrap();
            if crash {
                db.crash();
            } else {
                db.flush().unwrap();
            }
        }
        let mut db = Database::open_paged(&path, 16).unwrap();
        assert_eq!(db.catalog().table("empl").unwrap().constraints.len(), 3);
        assert_constraints_still_enforced(&mut db);
        // And valid traffic still flows.
        db.execute("INSERT INTO empl VALUES (2, 'jones', 30000, 1)")
            .unwrap();
        assert_eq!(db.backend().scan("empl").unwrap().len(), 2, "crash={crash}");
        cleanup(&path);
    }
}

// ---------------------------------------------------------------------
// Steal: crashes between steal, commit, and recovery undo
// ---------------------------------------------------------------------

/// Tentpole acceptance: a transaction whose write set exceeds the
/// buffer pool steals pages (uncommitted bytes reach the database
/// file). A crash *before* COMMIT must recover the pre-transaction
/// state through the logged undo images; the same crash *after* COMMIT
/// must keep the whole rewrite (stolen pages were re-logged as redo at
/// commit).
#[test]
fn crash_between_steal_and_commit_rolls_stolen_pages_back() {
    for commit_first in [false, true] {
        let path = temp_db("steal");
        {
            let shared = server::SharedDatabase::open(&path, 8).unwrap();
            {
                let mut setup = shared.session();
                setup.execute("CREATE TABLE t (k INT, pad TEXT)").unwrap();
                for stmt in wide_fill("t", 160, "o") {
                    setup.execute(&stmt).unwrap();
                }
            }
            let mut s = shared.session();
            s.execute("BEGIN").unwrap();
            let r = s
                .execute(&format!("UPDATE t SET pad = '{}'", "N".repeat(350)))
                .unwrap();
            assert_eq!(r.affected, 160, "~15 pages dirty under an 8-frame pool");
            if commit_first {
                s.execute("COMMIT").unwrap();
            }
            shared.crash().unwrap();
            drop(s);
        }
        let db = Database::open_paged(&path, 8).unwrap();
        let rows = db.backend().scan("t").unwrap();
        assert_eq!(rows.len(), 160, "commit_first={commit_first}");
        let want = if commit_first { 'N' } else { 'o' };
        assert!(
            rows.iter()
                .all(|r| r[1].as_text().unwrap().starts_with(want)),
            "commit_first={commit_first}: stolen writes must {} the crash",
            if commit_first {
                "survive"
            } else {
                "not survive"
            }
        );
        cleanup(&path);
    }
}

/// Crash mid-undo: the in-flight ROLLBACK of a stolen transaction hits
/// injected I/O failures while restoring pages, then the process dies.
/// The undo images are still in the log (checkpoints are refused while
/// a transaction is open), so recovery completes the rollback.
#[test]
fn crash_mid_rollback_of_stolen_transaction_recovers() {
    let path = temp_db("mid-undo");
    let fault = Fault::new();
    {
        let backend = PagedBackend::open_with_fault(&path, 8, fault.clone()).unwrap();
        let shared =
            server::SharedDatabase::from_database(Database::from_paged_backend(backend).unwrap());
        {
            let mut setup = shared.session();
            setup.execute("CREATE TABLE t (k INT, pad TEXT)").unwrap();
            for stmt in wide_fill("t", 160, "o") {
                setup.execute(&stmt).unwrap();
            }
        }
        let mut s = shared.session();
        s.execute("BEGIN").unwrap();
        s.execute(&format!("UPDATE t SET pad = '{}'", "Z".repeat(350)))
            .unwrap();
        // The rollback's page restores run against a dying disk: some
        // land, the rest fail (best-effort). Then the power goes out.
        fault.fail_after_writes(2);
        let _ = s.execute("ROLLBACK");
        fault.heal();
        shared.crash().unwrap();
        drop(s);
    }
    let db = Database::open_paged(&path, 8).unwrap();
    let rows = db.backend().scan("t").unwrap();
    assert_eq!(rows.len(), 160);
    assert!(
        rows.iter()
            .all(|r| r[1].as_text().unwrap().starts_with('o')),
        "recovery must finish the interrupted rollback"
    );
    cleanup(&path);
}

// ---------------------------------------------------------------------
// Interleaved multi-transaction logs
// ---------------------------------------------------------------------

/// Builds a WAL by hand with frames of several transactions interleaved
/// (as an external or future producer might write them), then asserts
/// the replay oracle: committed transactions replay in LSN order,
/// uncommitted and aborted ones are discarded — regardless of how their
/// frames interleave.
#[test]
fn interleaved_multi_txn_logs_replay_only_committed_transactions() {
    use storage::page::{Page, PageKind, PAGE_SIZE};
    use storage::wal::WalRecord;
    use storage::Wal;

    fn image(fill: u8) -> Box<[u8; PAGE_SIZE]> {
        let mut p = Page::zeroed();
        p.init(PageKind::Heap);
        p.push_record(&[fill; 8]).unwrap();
        Box::new(*p.as_bytes())
    }

    // Scenario matrix: (log script, expected replayed txn ids).
    // U(t, page, fill) = update; B/C/A = begin/commit/abort.
    type Script = Vec<WalRecord>;
    let scenarios: Vec<(Script, Vec<u64>, &str)> = vec![
        (
            // Two txns fully interleaved; only txn 2 commits.
            vec![
                WalRecord::Begin { txn: 1 },
                WalRecord::Begin { txn: 2 },
                WalRecord::Update {
                    txn: 1,
                    page: 0,
                    image: image(0x11),
                },
                WalRecord::Update {
                    txn: 2,
                    page: 1,
                    image: image(0x22),
                },
                WalRecord::Update {
                    txn: 1,
                    page: 2,
                    image: image(0x13),
                },
                WalRecord::Commit { txn: 2 },
            ],
            vec![2],
            "interleaved, one in-flight",
        ),
        (
            // Commit then a later txn aborts; a third commits after.
            vec![
                WalRecord::Begin { txn: 1 },
                WalRecord::Update {
                    txn: 1,
                    page: 0,
                    image: image(0x31),
                },
                WalRecord::Begin { txn: 2 },
                WalRecord::Commit { txn: 1 },
                WalRecord::Update {
                    txn: 2,
                    page: 1,
                    image: image(0x32),
                },
                WalRecord::Abort { txn: 2 },
                WalRecord::Begin { txn: 3 },
                WalRecord::Update {
                    txn: 3,
                    page: 1,
                    image: image(0x33),
                },
                WalRecord::Commit { txn: 3 },
            ],
            vec![1, 3],
            "commit, abort, commit",
        ),
        (
            // Same page written by an aborted and a committed txn: the
            // committed image must land, the aborted one must not.
            vec![
                WalRecord::Begin { txn: 1 },
                WalRecord::Begin { txn: 2 },
                WalRecord::Update {
                    txn: 1,
                    page: 0,
                    image: image(0x41),
                },
                WalRecord::Update {
                    txn: 2,
                    page: 0,
                    image: image(0x42),
                },
                WalRecord::Abort { txn: 1 },
                WalRecord::Commit { txn: 2 },
            ],
            vec![2],
            "aborted and committed touch the same page",
        ),
    ];

    for (script, expect_replayed, label) in scenarios {
        let mut wal = Wal::in_memory();
        for record in &script {
            wal.append(record).unwrap();
        }
        wal.sync().unwrap();
        let mut pager = storage::pager::Pager::in_memory();
        let report = wal.recover(&mut pager).unwrap();
        assert_eq!(
            report.txns_replayed,
            expect_replayed.len() as u64,
            "{label}: wrong replay count: {report:?}"
        );
        // Every committed update landed; page 0 of the third scenario
        // must hold the committed fill, not the aborted one.
        if label.starts_with("aborted and committed") {
            let mut out = Page::zeroed();
            pager.read(0, &mut out).unwrap();
            assert_eq!(out.record(0), [0x42; 8], "{label}");
        }
    }
}

/// End-to-end: sessions A and B interleave statements through the
/// shared server; A commits, B is still open at the crash. Recovery
/// keeps exactly A's rows — the engine-level version of the
/// hand-written log scenarios above.
#[test]
fn server_sessions_interleave_and_recover_committed_prefix() {
    let path = temp_db("sessions");
    {
        let shared = server::SharedDatabase::open(&path, 32).unwrap();
        {
            let mut setup = shared.session();
            setup.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
            setup.execute("CREATE INDEX ON t (a)").unwrap();
            setup.execute("CREATE TABLE u (k INT)").unwrap();
        }
        let mut a = shared.session();
        let mut b = shared.session();
        a.execute("BEGIN").unwrap();
        b.execute("BEGIN").unwrap();
        for i in 0..10 {
            a.execute(&format!("INSERT INTO t VALUES ({i}, 'a{i}')"))
                .unwrap();
            b.execute(&format!("INSERT INTO u VALUES ({i})")).unwrap();
        }
        a.execute("COMMIT").unwrap();
        shared.crash().unwrap();
        drop((a, b));
    }
    let db = Database::open_paged(&path, 32).unwrap();
    assert_eq!(db.backend().scan("t").unwrap().len(), 10, "A committed");
    assert_eq!(db.backend().scan("u").unwrap().len(), 0, "B in flight");
    assert_heap_index_agree(&db, "t", &[0]);
    cleanup(&path);
}

// ---------------------------------------------------------------------
// Property: random workloads, random crash points
// ---------------------------------------------------------------------

/// One generated statement, rendered against the fixed three-table
/// schema (r, s, and u with a primary key).
fn op_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        6 => (0i64..30, 0i64..6, "[a-z]{1,6}").prop_map(|(a, b, c)| format!(
            "INSERT INTO r VALUES ({a}, {b}, '{c}')"
        )),
        3 => (0i64..6, "[a-z]{1,4}").prop_map(|(b, d)| format!(
            "INSERT INTO s VALUES ({b}, '{d}')"
        )),
        2 => (0i64..10).prop_map(|k| format!("INSERT INTO u VALUES ({k})")),
        1 => Just("CREATE INDEX ON r (b)".to_string()),
        1 => Just("CREATE INDEX ON s (b)".to_string()),
        1 => Just("DELETE FROM s".to_string()),
        1 => Just("DELETE FROM r".to_string()),
        // Predicated DML (indexed when the CREATE INDEX ops fired
        // earlier in the sequence, full-scan otherwise):
        2 => (0i64..6, 0i64..6).prop_map(|(b, b2)| format!(
            "UPDATE r SET b = {b2} WHERE b = {b}"
        )),
        2 => (0i64..30, "[a-z]{1,4}").prop_map(|(a, c)| format!(
            "UPDATE r SET c = '{c}', a = a + 1 WHERE a >= {a}"
        )),
        1 => (0i64..6, "[a-z]{1,4}").prop_map(|(b, d)| format!(
            "UPDATE s SET d = '{d}' WHERE b <= {b}"
        )),
        // Key rewrites on u may collide — the paged run and the oracle
        // must then agree on the ConstraintViolation.
        1 => (0i64..10, 0i64..10).prop_map(|(k, k2)| format!(
            "UPDATE u SET k = {k2} WHERE k = {k}"
        )),
        2 => (0i64..30,).prop_map(|(a,)| format!("DELETE FROM r WHERE a > {a}")),
        1 => (0i64..6, 0i64..6).prop_map(|(b, b2)| format!(
            "DELETE FROM s WHERE b >= {b} AND b < {b2}"
        )),
        1 => (0i64..10,).prop_map(|(k,)| format!("DELETE FROM u WHERE k = {k}")),
        // The wide table: padded multi-row inserts grow it past a small
        // pool fast, and the whole-table rewrite then steals at every
        // random crash point.
        3 => (0i64..50, "[a-z]").prop_map(|(k, c)| {
            let rows: Vec<String> = (k..k + 15)
                .map(|i| format!("({i}, '{}')", c.repeat(700)))
                .collect();
            format!("INSERT INTO w VALUES {}", rows.join(", "))
        }),
        2 => "[a-z]".prop_map(|c| format!("UPDATE w SET pad = '{}'", c.repeat(690))),
        1 => (0i64..50,).prop_map(|(k,)| format!("DELETE FROM w WHERE k < {k}")),
        1 => Just("DELETE FROM w".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random statement sequences with a random crash point: the
    /// recovered database equals the committed prefix replayed on the
    /// in-memory backend, statement for statement (errors included —
    /// e.g. duplicate-key inserts into `u` must fail on both).
    #[test]
    fn random_workloads_recover_committed_prefix(
        ops in proptest::collection::vec(op_strategy(), 1..48),
        crash_at in 0usize..48,
    ) {
        let setup = [
            "CREATE TABLE r (a INT, b INT, c TEXT)",
            "CREATE TABLE s (b INT, d TEXT)",
            "CREATE TABLE u (k INT, PRIMARY KEY (k))",
            "CREATE TABLE w (k INT, pad TEXT)",
        ];
        let crash_at = crash_at.min(ops.len());
        let path = temp_db("prop");
        let mut db = Database::open_paged(&path, pool_frames(12)).unwrap();
        let mut oracle = Database::new();
        for stmt in setup.iter().map(|s| s.to_string()).chain(ops[..crash_at].iter().cloned()) {
            let a = db.execute(&stmt);
            let b = oracle.execute(&stmt);
            prop_assert_eq!(
                a.is_ok(),
                b.is_ok(),
                "backends disagreed on {}: paged {:?} vs mem {:?}",
                stmt, a.err().map(|e| e.to_string()), b.err().map(|e| e.to_string())
            );
            if let (Ok(ra), Ok(rb)) = (a, b) {
                prop_assert_eq!(ra.affected, rb.affected, "affected diverged on {}", stmt);
            }
        }
        db.crash();
        let recovered = Database::open_paged(&path, pool_frames(12)).unwrap();
        prop_assert_eq!(full_state(&recovered), full_state(&oracle));
        assert_heap_index_agree(&recovered, "r", &[0, 1, 2]);
        assert_heap_index_agree(&recovered, "s", &[0, 1]);
        // The key constraint on u still bites after recovery.
        let mut recovered = recovered;
        if let Some(row) = recovered.backend().scan("u").unwrap().first().cloned() {
            let Datum::Int(k) = row[0] else { panic!("u.k is INT") };
            prop_assert!(
                recovered.execute(&format!("INSERT INTO u VALUES ({k})")).is_err(),
                "duplicate key must still be rejected after recovery"
            );
        }
        cleanup(&path);
    }
}

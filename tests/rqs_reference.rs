//! Property test: the RQS planner/executor against a brute-force
//! reference evaluator.
//!
//! The planner chooses join orders, pushes restrictions into scans and
//! switches between hash and nested-loop joins; none of that may change
//! the result. The reference here evaluates the same SELECT by enumerating
//! the full cross product and filtering — obviously correct, obviously
//! slow — over randomly generated tables and conjunctive queries.

use proptest::prelude::*;
use rqs::{Database, Datum};

#[derive(Debug, Clone)]
struct TestData {
    r_rows: Vec<(i64, i64, String)>,
    s_rows: Vec<(i64, String)>,
}

fn datum_int(i: i64) -> Datum {
    Datum::Int(i)
}

fn load(data: &TestData) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE r (a INT, b INT, c TEXT)").unwrap();
    db.execute("CREATE TABLE s (b INT, d TEXT)").unwrap();
    for (a, b, c) in &data.r_rows {
        db.execute(&format!("INSERT INTO r VALUES ({a}, {b}, '{c}')"))
            .unwrap();
    }
    for (b, d) in &data.s_rows {
        db.execute(&format!("INSERT INTO s VALUES ({b}, '{d}')"))
            .unwrap();
    }
    db
}

/// One conjunct of the generated WHERE clause, in both executable and
/// reference form.
#[derive(Debug, Clone)]
enum Cond {
    /// r.a OP k
    RestrictA(&'static str, i64),
    /// r.b = s.b (the equijoin)
    Join,
    /// r.b OP s.b (inequality join)
    ThetaJoin(&'static str),
    /// s.d = 'tk'
    RestrictD(String),
}

impl Cond {
    fn sql(&self) -> String {
        match self {
            Cond::RestrictA(op, k) => format!("(v1.a {op} {k})"),
            Cond::Join => "(v1.b = v2.b)".to_owned(),
            Cond::ThetaJoin(op) => format!("(v1.b {op} v2.b)"),
            Cond::RestrictD(d) => format!("(v2.d = '{d}')"),
        }
    }

    fn eval(&self, r: &(i64, i64, String), s: &(i64, String)) -> bool {
        fn cmp(op: &str, x: i64, y: i64) -> bool {
            match op {
                "=" => x == y,
                "<>" => x != y,
                "<" => x < y,
                ">" => x > y,
                "<=" => x <= y,
                ">=" => x >= y,
                _ => unreachable!("generator emits known ops"),
            }
        }
        match self {
            Cond::RestrictA(op, k) => cmp(op, r.0, *k),
            Cond::Join => r.1 == s.0,
            Cond::ThetaJoin(op) => cmp(op, r.1, s.0),
            Cond::RestrictD(d) => &s.1 == d,
        }
    }
}

fn cond_strategy() -> impl Strategy<Value = Cond> {
    let ops = prop_oneof![
        Just("="),
        Just("<>"),
        Just("<"),
        Just(">"),
        Just("<="),
        Just(">=")
    ];
    prop_oneof![
        (ops.clone(), 0i64..6).prop_map(|(op, k)| Cond::RestrictA(op, k)),
        Just(Cond::Join),
        ops.prop_map(Cond::ThetaJoin),
        "[xyz]".prop_map(Cond::RestrictD),
    ]
}

fn data_strategy() -> impl Strategy<Value = TestData> {
    let r_row = (0i64..6, 0i64..6, "[xyz]");
    let s_row = (0i64..6, "[xyz]");
    (
        proptest::collection::vec(r_row, 0..12),
        proptest::collection::vec(s_row, 0..8),
    )
        .prop_map(|(r_rows, s_rows)| TestData { r_rows, s_rows })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Planner + executor ≡ cross-product-and-filter, including DISTINCT.
    #[test]
    fn executor_matches_reference(
        data in data_strategy(),
        conds in proptest::collection::vec(cond_strategy(), 0..4),
        distinct in proptest::bool::ANY,
    ) {
        let mut db = load(&data);
        let where_clause = if conds.is_empty() {
            String::new()
        } else {
            format!(
                " WHERE {}",
                conds.iter().map(Cond::sql).collect::<Vec<_>>().join(" AND ")
            )
        };
        let sql = format!(
            "SELECT {}v1.a, v2.b FROM r v1, s v2{where_clause}",
            if distinct { "DISTINCT " } else { "" }
        );
        let got = db.execute(&sql).unwrap();

        // Reference: enumerate the cross product.
        let mut expected: Vec<Vec<Datum>> = Vec::new();
        for r in &data.r_rows {
            for s in &data.s_rows {
                if conds.iter().all(|c| c.eval(r, s)) {
                    expected.push(vec![datum_int(r.0), datum_int(s.0)]);
                }
            }
        }
        if distinct {
            let mut seen = std::collections::HashSet::new();
            expected.retain(|row| seen.insert(row.clone()));
        }
        // Row multisets must agree (order is planner-dependent).
        let mut got_rows = got.rows.clone();
        let mut expected_rows = expected;
        got_rows.sort();
        expected_rows.sort();
        prop_assert_eq!(got_rows, expected_rows, "query: {}", sql);
    }

    /// UNION of two generated queries ≡ set union of their references.
    #[test]
    fn union_matches_reference(
        data in data_strategy(),
        k1 in 0i64..6,
        k2 in 0i64..6,
    ) {
        let mut db = load(&data);
        let sql = format!(
            "SELECT v1.a, v1.b FROM r v1 WHERE v1.a < {k1}
             UNION SELECT v2.a, v2.b FROM r v2 WHERE v2.b > {k2}"
        );
        let got = db.execute(&sql).unwrap();
        let mut expected: Vec<Vec<Datum>> = Vec::new();
        for r in &data.r_rows {
            if r.0 < k1 || r.1 > k2 {
                expected.push(vec![datum_int(r.0), datum_int(r.1)]);
            }
        }
        let mut seen = std::collections::HashSet::new();
        expected.retain(|row| seen.insert(row.clone()));
        let mut got_rows = got.rows.clone();
        got_rows.sort();
        expected.sort();
        prop_assert_eq!(got_rows, expected, "query: {}", sql);
    }

    /// NOT IN subqueries ≡ reference set complement.
    #[test]
    fn not_in_matches_reference(
        data in data_strategy(),
        negated in proptest::bool::ANY,
    ) {
        let mut db = load(&data);
        let not = if negated { "NOT " } else { "" };
        let sql = format!(
            "SELECT v1.a FROM r v1 WHERE v1.b {not}IN (SELECT v2.b FROM s v2)"
        );
        let got = db.execute(&sql).unwrap();
        let s_set: std::collections::HashSet<i64> =
            data.s_rows.iter().map(|(b, _)| *b).collect();
        let mut expected: Vec<Vec<Datum>> = data
            .r_rows
            .iter()
            .filter(|r| s_set.contains(&r.1) != negated)
            .map(|r| vec![datum_int(r.0)])
            .collect();
        let mut got_rows = got.rows.clone();
        got_rows.sort();
        expected.sort();
        prop_assert_eq!(got_rows, expected, "query: {}", sql);
    }
}

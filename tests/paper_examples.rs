//! End-to-end reproduction of every worked example in the paper.
//!
//! Each test is named after its example number; together they are the
//! "tables" of this 1984 paper, whose evaluation is qualitative.

use prolog_front_end::coupling::Coupler;
use prolog_front_end::dbcl::{ConstraintSet, DatabaseDef, DbclQuery};
use prolog_front_end::metaeval::{views, MetaEvaluator};
use prolog_front_end::optimizer::{Simplifier, SimplifyOutcome};
use prolog_front_end::pfe_core::{Datum, Session};
use prolog_front_end::sqlgen::mapping::{translate, MappingOptions};

fn little_firm_session() -> Session {
    let mut s = Session::empdep();
    s.load_empl(&[
        (1, "control", 80_000, 10),
        (2, "smiley", 60_000, 10),
        (3, "jones", 30_000, 20),
        (4, "miller", 25_000, 20),
        (5, "leamas", 35_000, 20),
    ])
    .unwrap();
    s.load_dept(&[(10, "hq", 1), (20, "field", 2)]).unwrap();
    s.check_integrity().unwrap();
    s
}

/// Example 3-1/3-2: the empdep schema and constraint base.
#[test]
fn example_3_1_schema_and_3_2_constraints() {
    let db = DatabaseDef::empdep();
    let schema: Vec<String> = db.schema_list().iter().map(ToString::to_string).collect();
    assert_eq!(schema, ["empdep", "eno", "nam", "sal", "dno", "fct", "mgr"]);
    let cs = ConstraintSet::empdep();
    cs.validate(&db).unwrap();
    assert_eq!(cs.bounds.len(), 1);
    assert_eq!(cs.fds.len(), 4);
    assert_eq!(cs.refints.len(), 2);
}

/// Example 3-3: "who works directly for Smiley for less than 40000?"
/// metaevaluates into the 4-row tableau with the `less` comparison.
#[test]
fn example_3_3_dbcl_representation() {
    let mut engine = prolog::Engine::new();
    engine.consult(views::WORKS_DIR_FOR).unwrap();
    let db = DatabaseDef::empdep();
    let meta = MetaEvaluator::new(engine.kb(), &db);
    let out = meta
        .metaevaluate(
            "works_dir_for(t_X, smiley), empl(E, t_X, S, D), less(S, 40000)",
            "works_dir_for",
        )
        .unwrap();
    let q = &out.branches[0].query;
    q.validate(&db).unwrap();
    assert_eq!(q.rows.len(), 4);
    let relations: Vec<&str> = q.rows.iter().map(|r| r.relation.as_str()).collect();
    assert_eq!(relations, ["empl", "dept", "empl", "empl"]);
    assert_eq!(q.comparisons.len(), 1);
    assert_eq!(q.comparisons[0].op, prolog_front_end::dbcl::CompOp::Less);
}

/// Example 4-1: the partner query resolves partly in the database, partly
/// in Prolog, and metaevaluate is effectively evaluated once (cached).
#[test]
fn example_4_1_partner_flow() {
    let mut s = little_firm_session();
    s.consult(views::SAME_MANAGER).unwrap();
    s.consult(
        "specialist(jones, guns). specialist(miller, driving). specialist(smiley, thinking).",
    )
    .unwrap();
    let run = s
        .query(
            "same_manager(t_X, jones), specialist(t_X, driving)",
            "partner",
        )
        .unwrap();
    assert_eq!(run.answers.len(), 1);
    assert_eq!(run.answers[0]["X"], Datum::text("miller"));
    // Second ask: served from the internal cache, no SQL.
    let again = s
        .query(
            "same_manager(t_X, jones), specialist(t_X, driving)",
            "partner",
        )
        .unwrap();
    assert!(again.branches[0].cache_hit);
}

/// Example 5-1: direct translation of same_manager(t_X, jones) — six FROM
/// variables, the five join terms and both restrictions of the paper.
#[test]
fn example_5_1_direct_sql() {
    let db = DatabaseDef::empdep();
    let sql = translate(&DbclQuery::example_4_1(), &db, MappingOptions::default()).unwrap();
    let text = sql.to_sql();
    assert_eq!(sql.from.len(), 6);
    assert_eq!(sql.join_term_count(), 5);
    for cond in [
        "(v1.dno = v2.dno)",
        "(v2.mgr = v3.eno)",
        "(v4.dno = v5.dno)",
        "(v5.mgr = v6.eno)",
        "(v4.nam = 'jones')",
        "(v3.nam = v6.nam)",
        "(v1.nam <> 'jones')",
    ] {
        assert!(text.contains(cond), "missing {cond} in:\n{text}");
    }
}

/// Example 6-1: the chase equates v_Eno4 with v_Eno1 and removes a row
/// from the Example 3-3 query, renaming the comparison consistently.
#[test]
fn example_6_1_chase() {
    let db = DatabaseDef::empdep();
    let cs = ConstraintSet::empdep();
    let mut q = DbclQuery::example_3_3();
    match prolog_front_end::optimizer::chase::chase(&mut q, &db, &cs) {
        prolog_front_end::optimizer::chase::ChaseOutcome::Done(stats) => {
            assert_eq!(stats.rows_removed, 1);
            assert_eq!(q.rows.len(), 3);
        }
        other => panic!("unexpected {other:?}"),
    }
    // Comparison now addresses v_Sal1 (the surviving row's salary).
    assert_eq!(
        q.comparisons[0].lhs,
        prolog_front_end::dbcl::Operand::Sym(prolog_front_end::dbcl::Symbol::var("Sal1"))
    );
}

/// Example 6-2: the full Algorithm-2 run — 6 rows → 2 rows, 5 joins → 1,
/// and the final SQL matches the paper's.
#[test]
fn example_6_2_full_simplification() {
    let db = DatabaseDef::empdep();
    let cs = ConstraintSet::empdep();
    let outcome = Simplifier::new(&db, &cs).simplify(DbclQuery::example_4_1());
    let SimplifyOutcome::Simplified(q, stats) = outcome else {
        panic!("empty")
    };
    assert_eq!(q.rows.len(), 2);
    assert_eq!(stats.rows_removed(), 4);
    let sql = translate(&q, &db, MappingOptions::default()).unwrap();
    assert_eq!(sql.join_term_count(), 1);
    let text = sql.to_sql();
    assert!(text.contains("FROM empl v1, empl v2"), "{text}");
    assert!(text.contains("(v1.dno = v2.dno)"), "{text}");
    assert!(text.contains("(v2.nam = 'jones')"), "{text}");
    assert!(text.contains("(v1.nam <> 'jones')"), "{text}");
}

/// Example 6-2 semantics: "who works for the same manager as jones" ≡
/// "who works in the same department as jones" — on actual data, with and
/// without optimization.
#[test]
fn example_6_2_answers_agree_on_data() {
    let mut s = little_firm_session();
    s.consult(views::SAME_MANAGER).unwrap();
    s.config_mut().cache = false;
    let optimized = s.query("same_manager(t_X, jones)", "same_manager").unwrap();
    s.config_mut().optimize = false;
    let direct = s.query("same_manager(t_X, jones)", "same_manager").unwrap();
    let names = |run: &prolog_front_end::pfe_core::QueryRun| {
        let mut v: Vec<String> = run
            .answers
            .iter()
            .map(|a| a["X"].as_text().unwrap().to_owned())
            .collect();
        v.sort();
        v
    };
    assert_eq!(names(&optimized), ["leamas", "miller"]);
    assert_eq!(names(&optimized), names(&direct));
    // The optimizer saved 4 of 5 joins.
    assert_eq!(direct.total_metrics().joins, 5);
    assert_eq!(optimized.total_metrics().joins, 1);
}

/// Example 7-1: naive sequence shapes — step k addresses 3(k+1) relations
/// before optimization; the per-step queries grow while the stored-
/// intermediate strategy's stay constant.
#[test]
fn example_7_1_query_growth() {
    let mut c = Coupler::empdep();
    c.consult(views::WORKS_FOR).unwrap();
    for (eno, nam, sal, dno) in [
        (1, "e1", 80_000, 1),
        (2, "e2", 60_000, 1),
        (3, "e3", 30_000, 2),
    ] {
        c.load_tuple(
            "empl",
            &[
                Datum::Int(eno),
                Datum::text(nam),
                Datum::Int(sal),
                Datum::Int(dno),
            ],
        )
        .unwrap();
    }
    for (dno, fct, mgr) in [(1, "hq", 1), (2, "field", 2)] {
        c.load_tuple(
            "dept",
            &[Datum::Int(dno), Datum::text(fct), Datum::Int(mgr)],
        )
        .unwrap();
    }
    c.check_integrity().unwrap();
    // Disable optimization to observe the raw naive growth of the paper.
    c.config.optimize = false;
    c.config.cache = false;
    c.config.unfold.max_recursion_depth = 3;
    let run = c.query("works_for(t_People, 'e1')", "works_for").unwrap();
    let sizes: Vec<usize> = run
        .branches
        .iter()
        .map(|b| b.dbcl_initial.rows.len())
        .collect();
    assert_eq!(sizes, [3, 6, 9]);
    assert!(run.recursive);
    assert!(run.truncated);
    let mut people: Vec<String> = run
        .answers
        .iter()
        .map(|a| a["People"].as_text().unwrap().to_owned())
        .collect();
    people.sort();
    assert_eq!(people, ["e1", "e2", "e3"]);
}

/// §6.1: the two value-bound scenarios from the running text.
#[test]
fn section_6_1_value_bounds() {
    let mut s = little_firm_session();
    s.consult(views::WORKS_DIR_FOR).unwrap();
    // 200000: redundant, dropped; query still runs and answers.
    let generous = s
        .query(
            "works_dir_for(t_X, smiley), empl(E, t_X, S, D), less(S, 200000)",
            "q1",
        )
        .unwrap();
    assert!(generous.branches[0].simplify_stats.comparisons_removed >= 1);
    assert_eq!(generous.answers.len(), 3);
    let sql = generous.branches[0].sql.as_ref().unwrap();
    assert!(!sql.contains("200000"), "bound survived: {sql}");
    // 2000: contradiction, provably empty, no SQL.
    let impossible = s
        .query(
            "works_dir_for(t_X, smiley), empl(E, t_X, S, D), less(S, 2000)",
            "q2",
        )
        .unwrap();
    assert!(impossible.answers.is_empty());
    assert!(impossible.branches[0].sql.is_none());
}

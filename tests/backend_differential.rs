//! Backend equivalence: the in-memory and paged storage engines must be
//! observationally identical through SQL.
//!
//! Three layers of evidence:
//!
//! 1. a fixed corpus replaying the statement shapes of
//!    `tests/rqs_reference.rs` (restrictions with every comparison
//!    operator, equijoins, theta joins, DISTINCT, UNION, `[NOT] IN`
//!    subqueries, DELETE/reload, index creation mid-stream) executed on
//!    both backends with a buffer pool far smaller than the data
//!    (16 frames by default; `RQS_TEST_POOL_FRAMES` pins CI's
//!    pool-pressure run to the 8-frame floor, forcing steals) —
//!    comparing results statement by statement;
//! 2. randomly generated data + conjunctive queries over the same `r`/`s`
//!    schema, with and without indexes, comparing result multisets;
//! 3. the paper's own workload from `tests/paper_examples.rs` run through
//!    two complete Prolog-front-end sessions, one per backend, comparing
//!    answers (and checking the paged session actually touched pages).

use prolog_front_end::pfe_core::{views, Session};
use proptest::test_runner::TestRng;
use rqs::Database;

/// Buffer-pool frames for the paged backend: a comfortable 16 by
/// default, overridden by `RQS_TEST_POOL_FRAMES` — CI's pool-pressure
/// step pins the engine's 8-frame floor so every whole-table statement
/// in the corpus exercises the steal (undo-logging) eviction path.
fn pool_frames() -> usize {
    std::env::var("RQS_TEST_POOL_FRAMES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
}

fn make_backends() -> Vec<(&'static str, Database)> {
    vec![
        ("in-memory", Database::new()),
        (
            "paged",
            Database::paged(pool_frames()).expect("paged database"),
        ),
    ]
}

/// Renders an execution outcome comparably: Ok(columns + sorted rows +
/// affected) or the error class.
fn outcome(db: &mut Database, sql: &str) -> Result<(Vec<String>, Vec<String>, usize), String> {
    match db.execute(sql) {
        Ok(result) => {
            let mut rows: Vec<String> = result
                .rows
                .iter()
                .map(|r| {
                    r.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect();
            rows.sort();
            Ok((result.columns, rows, result.affected))
        }
        // Compare by error kind, not message (messages may name backends).
        Err(e) => Err(format!("{e:?}").split('(').next().unwrap_or("?").to_owned()),
    }
}

#[test]
fn sql_corpus_agrees_across_backends() {
    let mut corpus: Vec<String> = vec![
        "CREATE TABLE r (a INT, b INT, c TEXT)".into(),
        "CREATE TABLE s (b INT, d TEXT)".into(),
    ];
    // Enough rows that the paged backend spans multiple pages and must
    // evict with its 8-frame pool.
    for i in 0..600i64 {
        corpus.push(format!(
            "INSERT INTO r VALUES ({}, {}, '{}')",
            i % 13,
            i % 7,
            ["x", "y", "z"][(i % 3) as usize]
        ));
    }
    for i in 0..200i64 {
        corpus.push(format!(
            "INSERT INTO s VALUES ({}, '{}')",
            i % 9,
            ["x", "y", "z"][(i % 3) as usize]
        ));
    }
    for op in ["=", "<>", "<", ">", "<=", ">="] {
        corpus.push(format!("SELECT v1.a, v1.c FROM r v1 WHERE v1.a {op} 4"));
        corpus.push(format!(
            "SELECT v1.a, v2.d FROM r v1, s v2 WHERE v1.b {op} v2.b AND v1.a = 3"
        ));
    }
    corpus.extend(
        [
            "SELECT v1.a FROM r v1",
            "SELECT DISTINCT v1.b FROM r v1",
            "SELECT v1.a, v2.b FROM r v1, s v2 WHERE v1.b = v2.b",
            "SELECT v1.a FROM r v1, s v2 WHERE v1.b = v2.b AND v2.d = 'y'",
            "SELECT v1.a FROM r v1 WHERE v1.a < 3 UNION SELECT v2.a FROM r v2 WHERE v2.b > 5",
            "SELECT v1.a FROM r v1 WHERE v1.b IN (SELECT v2.b FROM s v2 WHERE v2.d = 'x')",
            "SELECT v1.a FROM r v1 WHERE v1.b NOT IN (SELECT v2.b FROM s v2)",
            "SELECT v1.a FROM r v1 WHERE 1 = 2",
            "SELECT v1.a FROM r v1 WHERE v1.a = v1.b",
            "SELECT v9.a FROM r v1",   // unknown variable: same error class
            "SELECT v1.zzz FROM r v1", // unknown column
            "SELECT v1.a FROM nosuch v1", // unknown table
            // Index creation mid-stream: later point queries take the
            // B+-tree path on the paged backend.
            "CREATE INDEX ON r (a)",
            "SELECT v1.c FROM r v1 WHERE v1.a = 7",
            "SELECT v1.c FROM r v1 WHERE v1.a = 7 AND v1.b < 4",
            "DELETE FROM s",
            "SELECT v1.a FROM r v1 WHERE v1.b IN (SELECT v2.b FROM s v2)",
            "INSERT INTO s VALUES (1, 'x'), (2, 'y')",
            "SELECT v1.a FROM r v1, s v2 WHERE v1.b = v2.b",
            "DROP TABLE s",
            "SELECT v2.d FROM s v2",
        ]
        .map(String::from),
    );
    // A tuple larger than one 4 KiB page: both backends must reject it
    // with the same error class (record-size cap parity).
    corpus.push(format!(
        "INSERT INTO r VALUES (1, 2, '{}')",
        "w".repeat(5000)
    ));
    corpus.push("SELECT v1.a FROM r v1 WHERE v1.b = 2".into());

    let mut backends = make_backends();
    for sql in &corpus {
        let mut results = Vec::new();
        for (name, db) in backends.iter_mut() {
            results.push((name, outcome(db, sql)));
        }
        let (first_name, first) = &results[0];
        for (name, other) in &results[1..] {
            assert_eq!(first, other, "{first_name} vs {name} diverged on: {sql}");
        }
    }
}

/// The headline corpus of this suite's DML arm: UPDATE and predicated
/// DELETE in every interesting shape — indexed and unindexed
/// predicates, arithmetic SET expressions, rewrites of the indexed
/// column itself, constraint violations (CHECK/key/FK/restrict, whose
/// error classes must agree), always-false predicates, and the legacy
/// truncation fast path — each followed by full-table SELECT probes so
/// any divergence in state (not just in the statement's own result)
/// fails the run.
#[test]
fn update_and_predicated_delete_corpus_agrees_across_backends() {
    let mut corpus: Vec<String> = vec![
        "CREATE TABLE dept (dno INT, fct TEXT, PRIMARY KEY (dno))".into(),
        "CREATE TABLE empl (eno INT, nam TEXT, sal INT, dno INT, \
         PRIMARY KEY (eno), \
         CHECK (sal BETWEEN 10000 AND 90000), \
         FOREIGN KEY (dno) REFERENCES dept (dno))"
            .into(),
        "INSERT INTO dept VALUES (1, 'hq'), (2, 'lab'), (3, 'field'), (4, 'spare')".into(),
    ];
    for i in 0..300i64 {
        corpus.push(format!(
            "INSERT INTO empl VALUES ({i}, 'e{i}', {}, {})",
            10_000 + i * 37 % 40_000,
            i % 3 + 1
        ));
    }
    corpus.push("CREATE INDEX ON empl (dno)".into());
    corpus.push("CREATE INDEX ON empl (sal)".into());
    let probes = [
        "SELECT v.eno, v.nam, v.sal, v.dno FROM empl v",
        "SELECT v.dno, v.fct FROM dept v",
        "SELECT v.eno FROM empl v WHERE v.dno = 2",
        "SELECT v.eno FROM empl v WHERE v.sal >= 20000 AND v.sal < 30000",
    ];
    let dml = [
        // Indexed equality predicate; arithmetic SET.
        "UPDATE empl SET sal = sal + 100 WHERE dno = 1",
        // Indexed range predicate rewriting the ranged column itself.
        "UPDATE empl SET sal = 15000 WHERE sal < 12000",
        // Multi-assignment, unindexed predicate.
        "UPDATE empl SET nam = 'bulk', sal = 30000 WHERE nam = 'e7'",
        // FK-checked rewrite of the child column.
        "UPDATE empl SET dno = 2 WHERE dno = 3",
        // Whole-table update (no WHERE).
        "UPDATE empl SET sal = sal - 50",
        // Self-comparison predicate (column vs column of the same row).
        "UPDATE empl SET nam = 'loop' WHERE eno = dno",
        // CHECK violation: error classes must agree, state must not move.
        "UPDATE empl SET sal = 95000 WHERE eno = 10",
        "UPDATE empl SET sal = sal + 90000 WHERE dno = 2",
        // Key violation against a surviving row and between updated rows.
        "UPDATE empl SET eno = 11 WHERE eno = 12",
        "UPDATE empl SET eno = 999 WHERE dno = 1",
        // FK violation on the assigned column.
        "UPDATE empl SET dno = 99 WHERE eno = 20",
        // Restrict: rewriting/deleting a referenced parent key fails...
        "UPDATE dept SET dno = 9 WHERE dno = 1",
        "DELETE FROM dept WHERE dno = 1",
        // ...while unreferenced parent rows move/die freely.
        "UPDATE dept SET dno = 5 WHERE dno = 4",
        "DELETE FROM dept WHERE dno = 5",
        "UPDATE dept SET fct = 'renamed' WHERE dno = 1",
        // Predicated deletes: ranges, equality, no-match, always-false.
        "DELETE FROM empl WHERE sal > 45000",
        "DELETE FROM empl WHERE eno >= 100 AND eno < 110",
        "DELETE FROM empl WHERE nam = 'bulk'",
        "DELETE FROM empl WHERE eno = 123456",
        "DELETE FROM empl WHERE 1 = 2",
        "UPDATE empl SET sal = 20000 WHERE 2 < 1",
        // Legacy truncation is still DELETE without WHERE.
        "DELETE FROM empl",
        "SELECT v.eno FROM empl v",
    ];
    // Size-cap parity: a value assigned to an indexed column must fit a
    // B+-tree node, and a rewritten tuple must fit one 4 KiB page —
    // both backends reject with the same error class, state untouched.
    corpus.push("CREATE INDEX ON empl (nam)".into());
    corpus.push(format!(
        "UPDATE empl SET nam = '{}' WHERE eno = 30",
        "k".repeat(2000)
    ));
    corpus.push(format!(
        "UPDATE empl SET nam = '{}' WHERE eno = 30",
        "k".repeat(4500)
    ));
    for stmt in dml {
        corpus.push(stmt.into());
        corpus.extend(probes.iter().map(|p| p.to_string()));
    }
    // A table far wider than the default 8-frame pool (~15 pages of
    // padded rows): the whole-table rewrite used to be the one pinned
    // parity exception (paged failed pool-exhausted where in-memory
    // succeeded). With steal/undo logging both backends succeed
    // identically — and the statement now exercises the steal path on
    // every differential run.
    corpus.push("CREATE TABLE wide (k INT, pad TEXT)".into());
    for chunk in 0..4 {
        let rows: Vec<String> = (0..40)
            .map(|i| format!("({}, '{}')", chunk * 40 + i, "w".repeat(350)))
            .collect();
        corpus.push(format!("INSERT INTO wide VALUES {}", rows.join(", ")));
    }
    corpus.push(format!("UPDATE wide SET pad = '{}'", "W".repeat(360)));
    corpus.push("SELECT v.k, v.pad FROM wide v".into());
    corpus.push("DELETE FROM wide WHERE k >= 80".into());
    corpus.push(format!(
        "UPDATE wide SET pad = '{}' WHERE k < 80",
        "x".repeat(20)
    ));
    corpus.push("SELECT v.k, v.pad FROM wide v".into());
    // Bare DELETE (truncation) now carries restrict semantics: a parent
    // that referencing children still point at refuses to truncate on
    // both backends; the child truncates freely, then the parent does.
    // (empl was truncated by the dml block above, so re-reference dept
    // first.)
    corpus.push("INSERT INTO dept VALUES (7, 'annex')".into());
    corpus.push("INSERT INTO empl VALUES (500, 'z', 20000, 7)".into());
    corpus.push("DELETE FROM dept".into());
    corpus.push("SELECT v.dno, v.fct FROM dept v".into());
    corpus.push("DELETE FROM empl".into());
    corpus.push("DELETE FROM dept".into());
    corpus.push("SELECT v.dno FROM dept v".into());
    corpus.push("SELECT v.eno FROM empl v".into());

    let mut backends = make_backends();
    for sql in &corpus {
        let mut results = Vec::new();
        for (name, db) in backends.iter_mut() {
            results.push((name, outcome(db, sql)));
        }
        let (first_name, first) = &results[0];
        for (name, other) in &results[1..] {
            assert_eq!(first, other, "{first_name} vs {name} diverged on: {sql}");
        }
    }
}

/// Generated DML mixed with inserts: every statement (and a full-state
/// probe after each DML) must agree across backends, indexes on or off.
#[test]
fn generated_update_delete_statements_agree_across_backends() {
    let mut rng = TestRng::deterministic("backend_differential_dml");
    let ops = ["=", "<>", "<", ">", "<=", ">="];
    let letters = ["x", "y", "z"];
    for case in 0..120 {
        let mut backends = make_backends();
        let mut statements: Vec<String> = vec![
            "CREATE TABLE r (a INT, b INT, c TEXT)".into(),
            "CREATE TABLE s (b INT, d TEXT)".into(),
            "CREATE TABLE u (k INT, PRIMARY KEY (k))".into(),
        ];
        if rng.below(2) == 0 {
            statements.push("CREATE INDEX ON r (a)".into());
            statements.push("CREATE INDEX ON s (b)".into());
        }
        for _ in 0..rng.below(40) {
            statements.push(format!(
                "INSERT INTO r VALUES ({}, {}, '{}')",
                rng.below(6),
                rng.below(6),
                letters[rng.below(3) as usize]
            ));
        }
        for _ in 0..rng.below(15) {
            statements.push(format!(
                "INSERT INTO s VALUES ({}, '{}')",
                rng.below(6),
                letters[rng.below(3) as usize]
            ));
        }
        for _ in 0..rng.below(8) {
            statements.push(format!("INSERT INTO u VALUES ({})", rng.below(10)));
        }
        for _ in 0..rng.below(10) {
            let op = ops[rng.below(6) as usize];
            let dml = match rng.below(8) {
                0 => format!(
                    "UPDATE r SET a = {} WHERE b {op} {}",
                    rng.below(6),
                    rng.below(6)
                ),
                1 => format!(
                    "UPDATE r SET b = b + {} WHERE a = {}",
                    rng.below(4),
                    rng.below(6)
                ),
                2 => format!(
                    "UPDATE r SET c = '{}', b = {} WHERE c {op} '{}'",
                    letters[rng.below(3) as usize],
                    rng.below(6),
                    letters[rng.below(3) as usize]
                ),
                3 => format!(
                    "UPDATE s SET d = '{}' WHERE b >= {} AND b < {}",
                    letters[rng.below(3) as usize],
                    rng.below(4),
                    rng.below(8)
                ),
                // Key rewrites on u may collide: the error must agree too.
                4 => format!(
                    "UPDATE u SET k = {} WHERE k = {}",
                    rng.below(10),
                    rng.below(10)
                ),
                5 => format!("DELETE FROM r WHERE a {op} {}", rng.below(6)),
                6 => format!(
                    "DELETE FROM s WHERE d = '{}'",
                    letters[rng.below(3) as usize]
                ),
                _ => format!("DELETE FROM r WHERE a = b AND b {op} {}", rng.below(6)),
            };
            statements.push(dml);
            statements.push("SELECT v1.a, v1.b, v1.c FROM r v1".into());
            statements.push("SELECT v2.b, v2.d FROM s v2".into());
            statements.push("SELECT v3.k FROM u v3".into());
        }

        for sql in &statements {
            let mut results = Vec::new();
            for (name, db) in backends.iter_mut() {
                results.push((name, outcome(db, sql)));
            }
            let (first_name, first) = &results[0];
            for (name, other) in &results[1..] {
                assert_eq!(
                    first, other,
                    "case {case}: {first_name} vs {name} diverged on: {sql}"
                );
            }
        }
    }
}

#[test]
fn generated_queries_agree_across_backends() {
    let mut rng = TestRng::deterministic("backend_differential");
    let ops = ["=", "<>", "<", ">", "<=", ">="];
    for case in 0..150 {
        let mut backends = make_backends();
        let mut statements: Vec<String> = vec![
            "CREATE TABLE r (a INT, b INT, c TEXT)".into(),
            "CREATE TABLE s (b INT, d TEXT)".into(),
        ];
        if rng.below(2) == 0 {
            statements.push("CREATE INDEX ON r (b)".into());
            statements.push("CREATE INDEX ON s (b)".into());
        }
        for _ in 0..rng.below(40) {
            statements.push(format!(
                "INSERT INTO r VALUES ({}, {}, '{}')",
                rng.below(6),
                rng.below(6),
                ["x", "y", "z"][rng.below(3) as usize]
            ));
        }
        for _ in 0..rng.below(20) {
            statements.push(format!(
                "INSERT INTO s VALUES ({}, '{}')",
                rng.below(6),
                ["x", "y", "z"][rng.below(3) as usize]
            ));
        }
        let mut conds: Vec<String> = Vec::new();
        for _ in 0..rng.below(4) {
            conds.push(match rng.below(4) {
                0 => format!("(v1.a {} {})", ops[rng.below(6) as usize], rng.below(6)),
                1 => "(v1.b = v2.b)".into(),
                2 => format!("(v1.b {} v2.b)", ops[rng.below(6) as usize]),
                _ => format!("(v2.d = '{}')", ["x", "y", "z"][rng.below(3) as usize]),
            });
        }
        let where_clause = if conds.is_empty() {
            String::new()
        } else {
            format!(" WHERE {}", conds.join(" AND "))
        };
        let distinct = if rng.below(2) == 0 { "DISTINCT " } else { "" };
        statements.push(format!(
            "SELECT {distinct}v1.a, v2.b FROM r v1, s v2{where_clause}"
        ));

        for sql in &statements {
            let mut results = Vec::new();
            for (name, db) in backends.iter_mut() {
                results.push((name, outcome(db, sql)));
            }
            let (first_name, first) = &results[0];
            for (name, other) in &results[1..] {
                assert_eq!(
                    first, other,
                    "case {case}: {first_name} vs {name} diverged on: {sql}"
                );
            }
        }
    }
}

/// The spy-firm fixture of `tests/paper_examples.rs`, on a given session.
fn load_spy(mut s: Session) -> Session {
    s.load_empl(&[
        (1, "control", 80_000, 10),
        (2, "smiley", 60_000, 10),
        (3, "jones", 30_000, 20),
        (4, "miller", 25_000, 20),
        (5, "leamas", 35_000, 20),
    ])
    .expect("fixture loads");
    s.load_dept(&[(10, "hq", 1), (20, "field", 2)])
        .expect("fixture loads");
    s.check_integrity().expect("fixture is consistent");
    s.consult(views::WORKS_DIR_FOR).expect("views parse");
    s.consult(views::SAME_MANAGER).expect("views parse");
    s
}

#[test]
fn paper_pipeline_agrees_across_backends() {
    let mut mem = load_spy(Session::empdep());
    let mut paged = load_spy(Session::empdep_paged(8));
    let goals = [
        "works_dir_for(t_X, smiley)",
        "same_manager(t_X, jones)",
        "works_dir_for(t_X, smiley), empl(E, t_X, S, D), less(S, 40000)",
        "works_dir_for(t_X, smiley), empl(E, t_X, S, D), less(S, 2000)",
    ];
    let mut paged_pages_touched = 0;
    for goal in goals {
        let a = mem.query(goal, "q").expect("in-memory pipeline runs");
        let b = paged.query(goal, "q").expect("paged pipeline runs");
        let answers = |run: &prolog_front_end::pfe_core::QueryRun| {
            let mut v: Vec<String> = run
                .answers
                .iter()
                .map(|ans| {
                    ans.iter()
                        .map(|(k, d)| format!("{k}={d}"))
                        .collect::<Vec<_>>()
                        .join(";")
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(answers(&a), answers(&b), "goal: {goal}");
        let m = b.total_metrics();
        paged_pages_touched += m.page_reads + m.buffer_hits;
        assert_eq!(
            (a.total_metrics().page_reads, a.total_metrics().buffer_hits),
            (0, 0),
            "in-memory backend must report zero page I/O"
        );
    }
    assert!(
        paged_pages_touched > 0,
        "paged backend reported no page activity across the whole workload"
    );
    // DML through the coupling layer also agrees — including the new
    // truncation restrict rule: `dept.mgr` references `empl.eno` and
    // `empl.dno` references `dept.dno`, so the bare DELETE of either
    // table is refused identically on both backends while the other
    // still points at it.
    for table in ["empl", "dept"] {
        let sql = format!("DELETE FROM {table}");
        let del_mem = mem.coupler_mut().rqs.execute(&sql);
        let del_paged = paged.coupler_mut().rqs.execute(&sql);
        assert!(
            del_mem.is_err() && del_paged.is_err(),
            "truncating referenced {table} must be refused on both backends"
        );
    }
    // Unreferenced rows still delete identically through a predicate
    // (dept.mgr points at empl 1 and 2 only).
    let sql = "DELETE FROM empl WHERE eno > 2";
    let del_mem = mem.coupler_mut().rqs.execute(sql).unwrap();
    let del_paged = paged.coupler_mut().rqs.execute(sql).unwrap();
    assert_eq!(del_mem.affected, del_paged.affected);
    assert_eq!(del_mem.affected, 3);
}

//! The §7 extensions, end to end: disjunction (X1), negation (X2),
//! embedded predicates (X3) and multiple-query batching (X4).

use prolog_front_end::coupling::multi::{analyze_batch, BatchDisposition};
use prolog_front_end::coupling::Coupler;
use prolog_front_end::dbcl::{DatabaseDef, DbclQuery, DbclStatement};
use prolog_front_end::metaeval::{views, MetaEvaluator};
use prolog_front_end::pfe_core::{Datum, Session};
use prolog_front_end::sqlgen::dnf::generate_dnf_union_sql;
use prolog_front_end::sqlgen::mapping::MappingOptions;
use prolog_front_end::sqlgen::negation::translate_with_negation;

fn little_firm_session() -> Session {
    let mut s = Session::empdep();
    s.load_empl(&[
        (1, "control", 80_000, 10),
        (2, "smiley", 60_000, 10),
        (3, "jones", 30_000, 20),
        (4, "miller", 25_000, 20),
        (5, "leamas", 35_000, 20),
    ])
    .unwrap();
    s.load_dept(&[(10, "hq", 1), (20, "field", 2)]).unwrap();
    s.check_integrity().unwrap();
    s
}

/// X1 — disjunction through DNF: one query per branch, results unioned.
#[test]
fn x1_disjunction_dnf_union() {
    let mut s = little_firm_session();
    let cheap = DbclQuery::parse(
        "dbcl([empdep, eno, nam, sal, dno, fct, mgr],
              [v, *, t_X, *, *, *, *],
              [[empl, v_E, t_X, v_S, v_D, *, *]],
              [[less, v_S, 28000]])",
    )
    .unwrap();
    let hq = DbclQuery::parse(
        "dbcl([empdep, eno, nam, sal, dno, fct, mgr],
              [v, *, t_X, *, *, *, *],
              [[empl, v_E, t_X, v_S, v_D, *, *],
               [dept, *, *, *, v_D, hq, v_M]],
              [])",
    )
    .unwrap();
    let stmt =
        DbclStatement::Disjunction(vec![DbclStatement::Query(cheap), DbclStatement::Query(hq)]);
    let union_sql = generate_dnf_union_sql(
        &stmt,
        &DatabaseDef::empdep(),
        MappingOptions {
            first_var_index: 1,
            distinct: true,
        },
    )
    .unwrap();
    let result = s.coupler_mut().rqs.execute(&union_sql).unwrap();
    let mut names: Vec<String> = result.rows.iter().map(|r| r[0].to_string()).collect();
    names.sort();
    // miller (cheap) ∪ {control, smiley} (hq).
    assert_eq!(names, ["'control'", "'miller'", "'smiley'"]);
}

/// X1 through the Prolog route: a two-clause view is a disjunction.
#[test]
fn x1_disjunctive_view_through_pipeline() {
    let mut s = little_firm_session();
    s.consult(
        "target_group(X) :- empl(_, X, S, _), less(S, 28000).
         target_group(X) :- empl(_, X, _, D), dept(D, hq, _).",
    )
    .unwrap();
    let run = s.query("target_group(t_X)", "target_group").unwrap();
    let mut names: Vec<String> = run.answers.iter().map(|a| a["X"].to_string()).collect();
    names.sort();
    assert_eq!(names, ["'control'", "'miller'", "'smiley'"]);
    assert_eq!(run.branches.len(), 2);
}

/// X2 — negation via NOT IN: §7's manager example. "Should the query
/// not(manager(jones, M)) return all managers who do not manage Jones?"
/// — the interpretation the paper resolves with NOT IN.
#[test]
fn x2_negation_not_in() {
    let mut s = little_firm_session();
    // Managers (by employee number) that manage some department…
    let managers = DbclQuery::parse(
        "dbcl([empdep, eno, nam, sal, dno, fct, mgr],
              [m, t_M, *, *, *, *, *],
              [[empl, t_M, v_N, v_S, v_D, *, *],
               [dept, *, *, *, v_D2, v_F, t_M]],
              [])",
    )
    .unwrap();
    // …minus those managing Jones' department.
    let manages_jones = DbclQuery::parse(
        "dbcl([empdep, eno, nam, sal, dno, fct, mgr],
              [mj, t_M, *, *, *, *, *],
              [[empl, v_E, jones, v_S, v_D, *, *],
               [dept, *, *, *, v_D, v_F, t_M]],
              [])",
    )
    .unwrap();
    let sql = translate_with_negation(
        &managers,
        &manages_jones,
        &DatabaseDef::empdep(),
        MappingOptions {
            first_var_index: 1,
            distinct: true,
        },
    )
    .unwrap();
    let result = s.coupler_mut().rqs.execute(&sql.to_sql()).unwrap();
    // control (eno 1) manages hq but not jones; smiley (eno 2) manages jones.
    assert_eq!(result.rows.len(), 1);
    assert_eq!(result.rows[0][0], Datum::Int(1));
}

/// X3 — embedded general predicates: evaluated stepwise inside Prolog
/// after the database answers arrive, including arithmetic the DBMS never
/// sees.
#[test]
fn x3_stepwise_embedded_predicates() {
    let mut s = little_firm_session();
    s.consult(views::WORKS_DIR_FOR).unwrap();
    s.consult("short_name(N) :- name_length(N, L), L < 6. name_length(jones, 5). name_length(miller, 6). name_length(leamas, 6).")
        .unwrap();
    let run = s
        .query("works_dir_for(t_X, smiley), short_name(t_X)", "q")
        .unwrap();
    assert_eq!(run.answers.len(), 1);
    assert_eq!(run.answers[0]["X"], Datum::text("jones"));
    assert_eq!(run.branches[0].raw_answers, 3);
    assert_eq!(run.branches[0].residual_filtered, 2);
}

/// X4 — multiple-query optimization: a batch with duplicates and a
/// subsumed query executes fewer external queries with identical answers.
#[test]
fn x4_batch_reuse() {
    let mut engine = prolog::Engine::new();
    engine.consult(views::SAME_MANAGER).unwrap();
    let db = DatabaseDef::empdep();
    let meta = MetaEvaluator::new(engine.kb(), &db);
    // Two syntactic variants of the same query plus a restricted one.
    let q1 = meta
        .metaevaluate("same_manager(t_X, jones)", "a")
        .unwrap()
        .branches
        .remove(0)
        .query;
    let q2 = meta
        .metaevaluate("same_manager(t_X, jones)", "b")
        .unwrap()
        .branches
        .remove(0)
        .query;
    let q3 = meta
        .metaevaluate(
            "same_manager(t_X, jones), empl(E, t_X, S, D), less(S, 30000)",
            "c",
        )
        .unwrap()
        .branches
        .remove(0)
        .query;
    let report = analyze_batch(&[q1, q2, q3]);
    assert_eq!(report.dispositions[1], BatchDisposition::DuplicateOf(0));
    assert!(matches!(
        report.dispositions[2],
        BatchDisposition::ContainedIn(0) | BatchDisposition::Execute
    ));
    assert!(report.executed() <= 2);
    assert!(!report.overlaps.is_empty());
}

/// X4 at the coupler level: repeated queries hit the internal cache — the
/// degenerate but most common common-subexpression case.
#[test]
fn x4_cache_counts() {
    let mut c = Coupler::empdep();
    c.consult(views::WORKS_DIR_FOR).unwrap();
    for (eno, nam, sal, dno) in [(1, "e1", 80_000, 1), (2, "e2", 60_000, 1)] {
        c.load_tuple(
            "empl",
            &[
                Datum::Int(eno),
                Datum::text(nam),
                Datum::Int(sal),
                Datum::Int(dno),
            ],
        )
        .unwrap();
    }
    c.load_tuple("dept", &[Datum::Int(1), Datum::text("hq"), Datum::Int(1)])
        .unwrap();
    c.check_integrity().unwrap();
    c.query("works_dir_for(t_X, 'e1')", "q").unwrap();
    c.query("works_dir_for(t_X, 'e1')", "q").unwrap();
    c.query("works_dir_for(t_X, 'e1')", "q").unwrap();
    assert_eq!(c.cache().hits(), 2);
    assert_eq!(c.cache().misses(), 1);
}

//! Concurrency suite for the shared-database server.
//!
//! N session threads (`RQS_CONCURRENCY_THREADS`, default 4, min 2)
//! hammer one database through `server::SharedDatabase`:
//!
//! * disjoint and overlapping tables under autocommit;
//! * the classic isolation anomalies — lost updates and write skew —
//!   probed with explicit transactions under hierarchical two-phase
//!   locking (wait-die losers retry); the probes run with row-granular
//!   DML locking on (the default), so they double as its re-runs;
//! * row-granular locking itself: disjoint-row writers of one table
//!   commit concurrently with zero conflicts, same-row writers collide
//!   retryably, and past the escalation threshold one writer's intent
//!   lock swallows the whole table;
//! * crash-during-concurrent-commit: two in-flight transactions,
//!   exactly the committed one survives recovery, with and without the
//!   fault-injecting pager from the PR 2 harness;
//! * the TCP protocol under concurrent clients.
//!
//! Every scenario ends with a consistency sweep: heap scans and index
//! lookups must agree, and on reopen the recovered state must match
//! what committed.

use rqs::value::Tuple;
use rqs::{Database, Datum, PagedBackend};
use server::net::{Client, Server};
use server::{ServerError, SharedDatabase};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use storage::engine::wal_path;
use storage::Fault;

static NEXT_DB: AtomicUsize = AtomicUsize::new(0);

fn thread_count() -> usize {
    std::env::var("RQS_CONCURRENCY_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
        .max(2)
}

fn temp_db(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rqs-conc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!(
        "{tag}-{}.rqs",
        NEXT_DB.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(wal_path(&path));
    path
}

fn cleanup(path: &Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(wal_path(path));
}

/// A shared paged database with a pool large enough for N sessions'
/// write sets and a short lock timeout so tests fail fast.
fn shared(pool_pages: usize) -> SharedDatabase {
    SharedDatabase::with_lock_timeout(Database::paged(pool_pages).unwrap(), Duration::from_secs(2))
}

/// Retries a statement while it loses wait-die races.
fn retry<T>(mut f: impl FnMut() -> Result<T, ServerError>) -> T {
    for _ in 0..10_000 {
        match f() {
            Ok(v) => return v,
            Err(e) if e.is_retryable() => std::thread::sleep(Duration::from_micros(500)),
            Err(e) => panic!("non-retryable error: {e}"),
        }
    }
    panic!("statement kept conflicting after 10k retries");
}

/// Heap and index agreement for one column (same oracle the crash
/// suite uses).
fn assert_heap_index_agree(db: &SharedDatabase, table: &str, col: usize) {
    db.with_db(|db| {
        let rows = db.backend().scan(table).unwrap();
        if !db.backend().has_index(table, col) {
            return;
        }
        for row in &rows {
            let hits = db
                .backend()
                .index_lookup(table, col, &row[col])
                .unwrap()
                .expect("index exists");
            let expect = rows.iter().filter(|r| r[col] == row[col]).count();
            assert_eq!(hits.len(), expect, "{table}.{col} postings disagree");
        }
    })
    .unwrap();
}

#[test]
fn paged_backend_and_server_handles_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<PagedBackend>();
    assert_send::<SharedDatabase>();
    assert_send::<server::ServerSession>();
}

#[test]
fn n_threads_on_disjoint_tables() {
    let db = shared(64);
    let n = thread_count();
    let rows_per_table = 120;
    std::thread::scope(|scope| {
        for t in 0..n {
            let db = db.clone();
            scope.spawn(move || {
                let mut s = db.session();
                retry(|| s.execute(&format!("CREATE TABLE t{t} (a INT, b TEXT)")));
                for i in 0..rows_per_table {
                    retry(|| s.execute(&format!("INSERT INTO t{t} VALUES ({i}, 'v{i}')")));
                }
                let r = retry(|| s.execute(&format!("SELECT v.a FROM t{t} v")));
                assert_eq!(r.rows.len(), rows_per_table);
            });
        }
    });
    let mut check = db.session();
    for t in 0..n {
        let r = check.execute(&format!("SELECT v.a FROM t{t} v")).unwrap();
        assert_eq!(r.rows.len(), rows_per_table, "table t{t}");
    }
}

#[test]
fn n_threads_overlapping_one_table_with_index() {
    let db = shared(64);
    let n = thread_count();
    let per_thread = 100;
    {
        let mut s = db.session();
        s.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        s.execute("CREATE INDEX ON t (a)").unwrap();
    }
    std::thread::scope(|scope| {
        for t in 0..n {
            let db = db.clone();
            scope.spawn(move || {
                let mut s = db.session();
                for i in 0..per_thread {
                    let key = t * per_thread + i;
                    retry(|| s.execute(&format!("INSERT INTO t VALUES ({key}, 'w{t}')")));
                }
            });
        }
    });
    let mut s = db.session();
    let r = s.execute("SELECT v.a FROM t v").unwrap();
    assert_eq!(r.rows.len(), n * per_thread);
    let keys: BTreeSet<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
    assert_eq!(keys.len(), n * per_thread, "no row lost or duplicated");
    assert_heap_index_agree(&db, "t", 0);
}

/// The backoff probe, instrumented: every wait-die loss a session
/// sleeps through must show up identically in the `Backoff` instance,
/// the session's own counters, and the `STATS` surface.
#[test]
fn backoff_counters_surface_in_session_stats() {
    let db = shared(64);
    // Pin the pre-hierarchical table-X write locks: this probe exists
    // to generate wait-die losses on one hot table, and row-granular
    // inserts would make the contention (and the lock_exclusive
    // accounting below) evaporate.
    db.set_row_locking(false);
    db.session().execute("CREATE TABLE hot (a INT)").unwrap();
    let n = thread_count();
    let per_thread = 50u64;
    std::thread::scope(|scope| {
        for t in 0..n as u64 {
            let db = db.clone();
            scope.spawn(move || {
                let mut s = db.session();
                let mut backoff = server::Backoff::new(t);
                for i in 0..per_thread {
                    let key = t * per_thread + i;
                    s.execute_with_backoff(
                        &format!("INSERT INTO hot VALUES ({key})"),
                        &mut backoff,
                        u64::MAX,
                    )
                    .unwrap();
                }
                let stats = s.session_stats();
                assert_eq!(stats.retries, backoff.total_retries(), "retry accounting");
                assert_eq!(
                    stats.backoff_sleep_nanos,
                    backoff.total_sleep().as_nanos() as u64,
                    "sleep accounting"
                );
                // Each retried attempt was its own execute() call.
                assert_eq!(stats.statements, per_thread + stats.retries);
                // The same numbers come back over the statement surface.
                let rows = s.execute("STATS").unwrap().rows;
                let value = |name: &str| -> u64 {
                    let cell = rqs::Datum::text(name);
                    rows.iter()
                        .find(|r| r[0] == cell)
                        .unwrap_or_else(|| panic!("no {name} row"))[1]
                        .as_int()
                        .unwrap() as u64
                };
                assert_eq!(value("session_retries"), stats.retries);
                assert_eq!(
                    value("session_backoff_sleep_nanos"),
                    stats.backoff_sleep_nanos
                );
                assert_eq!(value("session_statements"), stats.statements + 1);
                assert!(backoff.total_retries() == 0 || backoff.total_sleep().as_nanos() > 0);
            });
        }
    });
    let r = db.session().execute("SELECT v.a FROM hot v").unwrap();
    assert_eq!(r.rows.len(), n * per_thread as usize, "no insert lost");
    // Wait-die losses retried here are aborts the lock manager counted.
    let snap = db.metrics().unwrap();
    assert!(
        snap.lock_exclusive >= n as u64 * per_thread,
        "every insert took the hot table exclusively"
    );
}

/// The textbook lost-update probe, now phrased as the textbook
/// statement: every transaction runs `UPDATE counter SET v = v + 1`
/// under an explicit transaction. Serializable execution means the
/// final counter equals the number of committed increments exactly; a
/// lost update would leave it short.
///
/// This runs under snapshot reads (the default): MVCC weakens *reads*,
/// never the write protocol. The UPDATE's candidate scan, row `X`
/// locks, and the engine's first-updater-wins check all happen under
/// one statement-mutex hold, so read-modify-write in one statement
/// stays exact even though SELECTs no longer lock.
#[test]
fn lost_update_probe_with_update_statement() {
    let db = shared(64);
    let n = thread_count();
    let per_thread = 8;
    db.session()
        .execute("CREATE TABLE counter (v INT)")
        .unwrap();
    db.session()
        .execute("INSERT INTO counter VALUES (0)")
        .unwrap();
    std::thread::scope(|scope| {
        for _ in 0..n {
            let db = db.clone();
            scope.spawn(move || {
                let mut s = db.session();
                for _ in 0..per_thread {
                    retry(|| {
                        s.execute("BEGIN")?;
                        // An error here has already rolled the
                        // transaction back; retry restarts at BEGIN.
                        let r = s.execute("UPDATE counter SET v = v + 1")?;
                        assert_eq!(r.affected, 1);
                        s.execute("COMMIT")
                    });
                }
            });
        }
    });
    let r = db.session().execute("SELECT c.v FROM counter c").unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Datum::Int((n * per_thread) as i64)]],
        "a lost update would leave the counter short"
    );
}

/// The original probe kept as a second variant: each transaction reads
/// the current maximum and inserts max+1. Under table-level 2PL every
/// transaction serializes, so all inserted values are distinct; a lost
/// update would show up as a duplicate.
///
/// Pinned to the table-`S` baseline: plain snapshot reads are not
/// serializable across the statements of one transaction, so under
/// them two transactions can read the same max and both insert max+1
/// — exactly why read-modify-write belongs in one UPDATE statement
/// (the probe above). This variant keeps exercising the 2PL-reader
/// regime the server still offers.
#[test]
fn lost_update_probe_read_max_then_insert_variant() {
    let db = shared(64);
    db.set_snapshot_reads(false);
    let n = thread_count();
    let per_thread = 8;
    db.session()
        .execute("CREATE TABLE counter (v INT)")
        .unwrap();
    db.session()
        .execute("INSERT INTO counter VALUES (0)")
        .unwrap();
    std::thread::scope(|scope| {
        for _ in 0..n {
            let db = db.clone();
            scope.spawn(move || {
                let mut s = db.session();
                for _ in 0..per_thread {
                    retry(|| {
                        s.execute("BEGIN")?;
                        let r = match s.execute("SELECT c.v FROM counter c") {
                            Ok(r) => r,
                            Err(e) => {
                                // BEGIN..error already rolled back.
                                return Err(e);
                            }
                        };
                        let max = r
                            .rows
                            .iter()
                            .map(|row| row[0].as_int().unwrap())
                            .max()
                            .unwrap();
                        s.execute(&format!("INSERT INTO counter VALUES ({})", max + 1))?;
                        s.execute("COMMIT")
                    });
                }
            });
        }
    });
    let r = db.session().execute("SELECT c.v FROM counter c").unwrap();
    let values: Vec<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
    let distinct: BTreeSet<i64> = values.iter().copied().collect();
    assert_eq!(
        values.len(),
        distinct.len(),
        "duplicate counter values = lost update: {values:?}"
    );
    assert_eq!(values.len(), n * per_thread + 1);
    assert_eq!(
        *distinct.iter().max().unwrap(),
        (n * per_thread) as i64,
        "strictly serial increments"
    );
}

/// Write-skew probe: every transaction reads both tables and inserts
/// into one only if both are still empty. Serializable execution admits
/// at most one success; write skew would let two transactions pass the
/// check simultaneously and both insert.
///
/// Pinned to the table-`S` baseline for the same reason as the
/// read-max variant above: snapshot isolation famously admits write
/// skew (two snapshots each see "both empty", the writes touch
/// different tables, nothing conflicts). The serializable guarantee
/// this probes comes from readers excluding writers, which is exactly
/// what `set_snapshot_reads(false)` restores.
#[test]
fn write_skew_probe_under_explicit_transactions() {
    let db = shared(64);
    db.set_snapshot_reads(false);
    let n = thread_count();
    {
        let mut s = db.session();
        s.execute("CREATE TABLE oncall_a (who INT)").unwrap();
        s.execute("CREATE TABLE oncall_b (who INT)").unwrap();
    }
    std::thread::scope(|scope| {
        for t in 0..n {
            let db = db.clone();
            scope.spawn(move || {
                let mut s = db.session();
                let target = if t % 2 == 0 { "oncall_a" } else { "oncall_b" };
                // Try a few times; losing a wait-die race is fine, and
                // finding the invariant already claimed means stop.
                for _ in 0..200 {
                    let outcome: Result<bool, ServerError> = (|| {
                        s.execute("BEGIN")?;
                        let a = s.execute("SELECT x.who FROM oncall_a x")?;
                        let b = s.execute("SELECT x.who FROM oncall_b x")?;
                        if a.rows.is_empty() && b.rows.is_empty() {
                            s.execute(&format!("INSERT INTO {target} VALUES ({t})"))?;
                            s.execute("COMMIT")?;
                            Ok(true)
                        } else {
                            s.execute("ROLLBACK")?;
                            Ok(false)
                        }
                    })();
                    match outcome {
                        Ok(_) => return,
                        Err(e) => {
                            assert!(e.is_retryable(), "unexpected: {e}");
                            std::thread::sleep(Duration::from_micros(500));
                        }
                    }
                }
                panic!("probe never completed");
            });
        }
    });
    let mut s = db.session();
    let a = s
        .execute("SELECT x.who FROM oncall_a x")
        .unwrap()
        .rows
        .len();
    let b = s
        .execute("SELECT x.who FROM oncall_b x")
        .unwrap()
        .rows
        .len();
    assert_eq!(a + b, 1, "write skew: {a} + {b} rows violate the invariant");
}

/// The false-violation regression (the documented anomaly this PR
/// closes): a uniqueness probe must never convict against a row that
/// later rolls back. On the seed, session B's INSERT of a key that
/// session A had inserted *uncommitted* reported a non-retryable
/// duplicate-key violation; if A then rolled back, B had been refused
/// for a row that never existed. Under snapshot reads the probe runs in
/// constraint-probe mode: it sees A's pending stamp and surfaces a
/// *retryable* conflict instead of a verdict, and once A's insert is
/// gone the retry goes through.
#[test]
fn uniqueness_probe_never_convicts_against_a_row_that_rolls_back() {
    let db = shared(64);
    {
        let mut setup = db.session();
        setup
            .execute("CREATE TABLE reg (k INT, PRIMARY KEY (k))")
            .unwrap();
        setup.execute("INSERT INTO reg VALUES (1)").unwrap();
    }
    let mut a = db.session();
    let mut b = db.session();
    a.execute("BEGIN").unwrap();
    a.execute("INSERT INTO reg VALUES (42)").unwrap();
    // B's probe cannot judge key 42 while A's insert is in flight:
    // retryable conflict, NOT a duplicate-key violation.
    let err = b.execute("INSERT INTO reg VALUES (42)").unwrap_err();
    assert!(
        err.is_retryable(),
        "probe against an uncommitted row must conflict retryably, got: {err}"
    );
    // A rolls back: key 42 never existed, so B's retry must succeed.
    a.execute("ROLLBACK").unwrap();
    retry(|| b.execute("INSERT INTO reg VALUES (42)"));
    let r = db.session().execute("SELECT v.k FROM reg v").unwrap();
    let keys: BTreeSet<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
    assert_eq!(keys, BTreeSet::from([1, 42]));
    // The probe still enforces uniqueness against *committed* rows:
    // a genuine duplicate stays a hard (non-retryable) violation.
    let err = b.execute("INSERT INTO reg VALUES (42)").unwrap_err();
    assert!(
        !err.is_retryable(),
        "committed duplicate must not retry: {err}"
    );
}

/// The stable-snapshot (torn-reader) probe: a reader's explicit
/// transaction pins one read view, so however many writers commit
/// under it, every SELECT it issues returns exactly the rows committed
/// when it began — not a moving count, not a torn prefix — and none of
/// those lock-free reads ever makes a writer wait.
#[test]
fn long_reader_sees_one_stable_snapshot_while_writers_commit() {
    let db = shared(64);
    db.session().execute("CREATE TABLE log (a INT)").unwrap();
    db.session()
        .execute("INSERT INTO log VALUES (1), (2), (3)")
        .unwrap();
    let before = db.metrics().unwrap();
    let mut reader = db.session();
    reader.execute("BEGIN").unwrap();
    assert_eq!(
        reader.execute("SELECT v.a FROM log v").unwrap().rows.len(),
        3
    );
    let mut writer = db.session();
    for round in 0..5 {
        writer
            .execute(&format!("INSERT INTO log VALUES ({})", 10 + round))
            .unwrap();
        writer.execute("UPDATE log SET a = a WHERE a = 1").unwrap();
        // Committed writes keep landing; the reader's view stays put.
        assert_eq!(
            reader.execute("SELECT v.a FROM log v").unwrap().rows.len(),
            3,
            "snapshot moved under an open transaction"
        );
    }
    reader.execute("COMMIT").unwrap();
    // A fresh statement gets a fresh snapshot: everything is visible.
    assert_eq!(
        reader.execute("SELECT v.a FROM log v").unwrap().rows.len(),
        8
    );
    let after = db.metrics().unwrap();
    assert_eq!(
        after.lock_waits, before.lock_waits,
        "lock-free reads must never make a writer wait"
    );
    // Only the 10 writer statements took a (schema) shared lock; the
    // reader's 7 SELECTs contributed none.
    assert_eq!(
        after.lock_shared,
        before.lock_shared + 10,
        "snapshot SELECTs must take no shared locks"
    );
}

/// Steal meets MVCC: one session's open transaction rewrites a table
/// far wider than the buffer pool, so its *uncommitted* pages are
/// stolen into the database file — while other sessions concurrently
/// read the same table. No reader may ever observe the uncommitted
/// rewrite: each rewritten row carries the writer's pending stamp, so
/// snapshot readers resolve it to its last committed version instead —
/// every concurrent SELECT now *succeeds* (no lock to die on) and
/// returns the original rows. After the writer aborts,
/// recovery-undo-grade rollback restores the heap for everyone.
#[test]
fn stolen_uncommitted_pages_are_never_read_by_other_sessions() {
    let db = shared(8); // tiny pool: the rewrite below must steal
    {
        let mut setup = db.session();
        setup.execute("CREATE TABLE t (k INT, pad TEXT)").unwrap();
        for chunk in 0..4 {
            let rows: Vec<String> = (chunk * 40..(chunk + 1) * 40)
                .map(|i| format!("({i}, '{}')", "o".repeat(350)))
                .collect();
            setup
                .execute(&format!("INSERT INTO t VALUES {}", rows.join(", ")))
                .unwrap();
        }
    }
    let mut writer = db.session();
    writer.execute("BEGIN").unwrap();
    let r = writer
        .execute(&format!("UPDATE t SET pad = '{}'", "S".repeat(350)))
        .unwrap();
    assert_eq!(r.affected, 160, "~15 dirty pages under an 8-frame pool");
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let db = db.clone();
            scope.spawn(move || {
                let mut s = db.session();
                for _ in 0..40 {
                    // Lock-free snapshot reads: never an error, never a
                    // dirty row — the stolen uncommitted bytes resolve
                    // to their committed prior versions.
                    let r = s.execute("SELECT v.pad FROM t v").unwrap();
                    assert_eq!(r.rows.len(), 160);
                    assert!(
                        r.rows
                            .iter()
                            .all(|row| row[0].as_text().unwrap().starts_with('o')),
                        "dirty read of stolen uncommitted pages"
                    );
                    std::thread::sleep(Duration::from_micros(200));
                }
            });
        }
        // Hold the exclusive lock while the readers hammer, then abort:
        // the stolen pages roll back from their logged undo images.
        std::thread::sleep(Duration::from_millis(5));
        writer.execute("ROLLBACK").unwrap();
    });
    let r = db.session().execute("SELECT v.pad FROM t v").unwrap();
    assert_eq!(r.rows.len(), 160);
    assert!(r
        .rows
        .iter()
        .all(|row| row[0].as_text().unwrap().starts_with('o')));
}

/// The acceptance scenario: two in-flight transactions at the moment of
/// the crash; after recovery exactly the committed one survives.
#[test]
fn crash_with_two_inflight_transactions_keeps_exactly_the_committed_one() {
    let path = temp_db("two-inflight");
    {
        let db = SharedDatabase::open(&path, 32).unwrap();
        {
            let mut setup = db.session();
            setup.execute("CREATE TABLE ta (a INT)").unwrap();
            setup.execute("CREATE TABLE tb (b INT)").unwrap();
        }
        let mut a = db.session();
        let mut b = db.session();
        a.execute("BEGIN").unwrap();
        a.execute("INSERT INTO ta VALUES (1)").unwrap();
        b.execute("BEGIN").unwrap();
        b.execute("INSERT INTO tb VALUES (2)").unwrap();
        b.execute("INSERT INTO tb VALUES (3)").unwrap();
        // B commits; A is still in flight when the power goes out.
        b.execute("COMMIT").unwrap();
        db.crash().unwrap();
        drop((a, b));
    }
    let recovered = Database::open_paged(&path, 32).unwrap();
    assert_eq!(
        recovered.backend().scan("ta").unwrap(),
        Vec::<Tuple>::new(),
        "uncommitted transaction must leave no trace"
    );
    let mut tb = recovered.backend().scan("tb").unwrap();
    tb.sort();
    assert_eq!(
        tb,
        vec![vec![Datum::Int(2)], vec![Datum::Int(3)]],
        "committed transaction must survive whole"
    );
    cleanup(&path);
}

/// Same shape under fault injection: one session's COMMIT hits an
/// injected sync failure (rolled back + physically rewound from the
/// log), the other committed cleanly before; recovery must keep
/// exactly the clean one — reusing the PR 2 fault-injecting pager.
#[test]
fn fault_injected_commit_failure_during_concurrent_sessions() {
    let path = temp_db("fault-commit");
    let fault = Fault::new();
    {
        let backend = PagedBackend::open_with_fault(&path, 32, fault.clone()).unwrap();
        let db = SharedDatabase::from_database(Database::from_paged_backend(backend).unwrap());
        {
            let mut setup = db.session();
            setup.execute("CREATE TABLE ok (a INT)").unwrap();
            setup.execute("CREATE TABLE doomed (b INT)").unwrap();
        }
        let mut good = db.session();
        let mut bad = db.session();
        good.execute("BEGIN").unwrap();
        good.execute("INSERT INTO ok VALUES (1)").unwrap();
        bad.execute("BEGIN").unwrap();
        bad.execute("INSERT INTO doomed VALUES (9)").unwrap();
        good.execute("COMMIT").unwrap();
        // The doomed commit logs Begin + 1 image + Commit (3 appends)
        // and then fails its sync.
        fault.fail_after_writes(3);
        let err = bad.execute("COMMIT").unwrap_err();
        assert!(
            matches!(err, ServerError::RolledBack(_)),
            "failed commit must report rollback: {err}"
        );
        fault.heal();
        // The session keeps working after the failed transaction.
        let r = bad.execute("SELECT x.b FROM doomed x").unwrap();
        assert!(r.rows.is_empty());
        db.crash().unwrap();
    }
    let recovered = Database::open_paged(&path, 32).unwrap();
    assert_eq!(recovered.backend().scan("ok").unwrap().len(), 1);
    assert_eq!(
        recovered.backend().scan("doomed").unwrap(),
        Vec::<Tuple>::new(),
        "a failed commit must never resurrect"
    );
    cleanup(&path);
}

/// Mixed readers and writers on one table: readers never see a torn
/// row set (every SELECT returns a prefix of the committed inserts,
/// never a partially applied multi-row statement).
#[test]
fn readers_see_only_whole_statements() {
    let db = shared(64);
    let n = thread_count();
    db.session()
        .execute("CREATE TABLE t (a INT, b INT)")
        .unwrap();
    let writers = (n / 2).max(1);
    let readers = (n - writers).max(1);
    let batches = 40;
    std::thread::scope(|scope| {
        for w in 0..writers {
            let db = db.clone();
            scope.spawn(move || {
                let mut s = db.session();
                for i in 0..batches {
                    let base = (w * batches + i) * 3;
                    // Three rows per statement: all or nothing.
                    retry(|| {
                        s.execute(&format!(
                            "INSERT INTO t VALUES ({}, 0), ({}, 1), ({}, 2)",
                            base,
                            base + 1,
                            base + 2
                        ))
                    });
                }
            });
        }
        for _ in 0..readers {
            let db = db.clone();
            scope.spawn(move || {
                let mut s = db.session();
                for _ in 0..60 {
                    let r = retry(|| s.execute("SELECT v.a FROM t v"));
                    assert_eq!(
                        r.rows.len() % 3,
                        0,
                        "a partially applied statement became visible"
                    );
                }
            });
        }
    });
    let r = db.session().execute("SELECT v.a FROM t v").unwrap();
    assert_eq!(r.rows.len(), writers * batches * 3);
}

/// The tentpole scenario: two sessions increment *different* rows of
/// the same table inside overlapping explicit transactions, and both
/// commit — no retries, no wait-die losses. Under the old table-level
/// write locks the second `UPDATE` could not even start. The rows are
/// padded past half a page so each lives on its own page (concurrent
/// *open* transactions must not co-own a frame — the buffer pool's
/// ownership backstop is page-granular even though the locks are
/// row-granular).
#[test]
fn disjoint_row_writers_commit_concurrently_without_retries() {
    let db = shared(64);
    {
        let mut setup = db.session();
        setup
            .execute("CREATE TABLE acct (k INT, v INT, pad TEXT)")
            .unwrap();
        let pad = "p".repeat(2200);
        setup
            .execute(&format!(
                "INSERT INTO acct VALUES (1, 100, '{pad}'), (2, 200, '{pad}')"
            ))
            .unwrap();
    }
    let before = db.metrics().unwrap();
    let mut a = db.session();
    let mut b = db.session();
    // Every statement unwraps directly: any conflict fails the test.
    a.execute("BEGIN").unwrap();
    a.execute("UPDATE acct SET v = v + 1 WHERE k = 1").unwrap();
    b.execute("BEGIN").unwrap();
    b.execute("UPDATE acct SET v = v + 1 WHERE k = 2").unwrap();
    // Both transactions hold their row locks right now.
    a.execute("COMMIT").unwrap();
    b.execute("COMMIT").unwrap();
    let r = db.session().execute("SELECT x.k, x.v FROM acct x").unwrap();
    let mut rows: Vec<(i64, i64)> = r
        .rows
        .iter()
        .map(|row| (row[0].as_int().unwrap(), row[1].as_int().unwrap()))
        .collect();
    rows.sort_unstable();
    assert_eq!(rows, vec![(1, 101), (2, 201)]);
    let after = db.metrics().unwrap();
    assert!(
        after.row_lock_exclusive >= before.row_lock_exclusive + 2,
        "both updates must have row-locked"
    );
    assert_eq!(
        after.lock_wait_die_aborts, before.lock_wait_die_aborts,
        "disjoint rows must never wait-die"
    );
    assert_eq!(
        after.row_lock_conflicts, before.row_lock_conflicts,
        "disjoint rows must never conflict"
    );
}

/// Same-row writers still collide: the second session's `UPDATE` of
/// the row the first one holds dies retryably (wait-die at row
/// granularity), and succeeds once the holder commits.
#[test]
fn same_row_writers_conflict_via_wait_die() {
    let db = shared(64);
    {
        let mut setup = db.session();
        setup
            .execute("CREATE TABLE acct (k INT, v INT, pad TEXT)")
            .unwrap();
        let pad = "p".repeat(2200);
        setup
            .execute(&format!(
                "INSERT INTO acct VALUES (1, 100, '{pad}'), (2, 200, '{pad}')"
            ))
            .unwrap();
    }
    let before = db.metrics().unwrap();
    let mut a = db.session();
    let mut b = db.session();
    a.execute("BEGIN").unwrap();
    a.execute("UPDATE acct SET v = v + 1 WHERE k = 1").unwrap();
    b.execute("BEGIN").unwrap();
    let err = b
        .execute("UPDATE acct SET v = v + 10 WHERE k = 1")
        .unwrap_err();
    assert!(err.is_retryable(), "same-row conflict must retry: {err}");
    assert!(
        matches!(err, ServerError::RolledBack(_)),
        "the explicit transaction rolled back: {err}"
    );
    let after = db.metrics().unwrap();
    assert!(
        after.row_lock_conflicts > before.row_lock_conflicts,
        "the collision must be a row conflict, not a table one"
    );
    assert!(
        after.lock_wait_die_aborts > before.lock_wait_die_aborts,
        "the younger writer died"
    );
    a.execute("COMMIT").unwrap();
    // The row is free now; the loser's retry goes through.
    retry(|| {
        b.execute("BEGIN")?;
        b.execute("UPDATE acct SET v = v + 10 WHERE k = 1")?;
        b.execute("COMMIT")
    });
    let r = db
        .session()
        .execute("SELECT x.v FROM acct x WHERE x.k = 1")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Datum::Int(111)]]);
}

/// Past the escalation threshold a writer's table lock becomes a full
/// `X`: later same-table writers then conflict at the *table*, not at
/// their (disjoint) rows.
#[test]
fn row_lock_escalation_takes_the_whole_table() {
    let db = SharedDatabase::with_lock_config(
        Database::paged(64).unwrap(),
        Duration::from_secs(2),
        4, // escalate after four row locks
    );
    {
        let mut setup = db.session();
        setup.execute("CREATE TABLE t (k INT, v INT)").unwrap();
        let rows: Vec<String> = (0..10).map(|i| format!("({i}, 0)")).collect();
        setup
            .execute(&format!("INSERT INTO t VALUES {}", rows.join(", ")))
            .unwrap();
    }
    let before = db.metrics().unwrap();
    let mut a = db.session();
    a.execute("BEGIN").unwrap();
    // Ten rows ≥ threshold 4: the update escalates mid-statement.
    let r = a.execute("UPDATE t SET v = v + 1 WHERE k >= 0").unwrap();
    assert_eq!(r.affected, 10);
    let after = db.metrics().unwrap();
    assert!(
        after.row_lock_escalations > before.row_lock_escalations,
        "ten row locks over a threshold of four must escalate"
    );
    // A disjoint-row writer now conflicts at the table.
    let mut b = db.session();
    let err = b
        .execute("UPDATE t SET v = v + 10 WHERE k = 0")
        .unwrap_err();
    assert!(err.is_retryable(), "{err}");
    a.execute("COMMIT").unwrap();
    retry(|| b.execute("UPDATE t SET v = v + 10 WHERE k = 0"));
    let r = db
        .session()
        .execute("SELECT x.v FROM t x WHERE x.k = 0")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Datum::Int(11)]]);
}

/// N autocommit writers, each hammering its own row of one shared
/// table: with row-granular locks nothing ever conflicts — no
/// wait-die aborts, no row conflicts, no retries (every execute
/// unwraps). This is the "hot table, disjoint rows" workload the old
/// table-level write locks fully serialized with thousands of aborts
/// (see `backoff_counters_surface_in_session_stats`, which pins the
/// old mode to keep measuring exactly that).
#[test]
fn disjoint_row_autocommit_writers_never_conflict() {
    let db = shared(64);
    let n = thread_count();
    let per_thread = 25;
    {
        let mut setup = db.session();
        setup.execute("CREATE TABLE hot (k INT, v INT)").unwrap();
        let rows: Vec<String> = (0..n).map(|t| format!("({t}, 0)")).collect();
        setup
            .execute(&format!("INSERT INTO hot VALUES {}", rows.join(", ")))
            .unwrap();
    }
    let before = db.metrics().unwrap();
    std::thread::scope(|scope| {
        for t in 0..n {
            let db = db.clone();
            scope.spawn(move || {
                let mut s = db.session();
                for _ in 0..per_thread {
                    // Autocommit statements commit inside the statement
                    // mutex, so even same-page rows never trip the
                    // pool's ownership backstop — and disjoint rows
                    // never trip the lock manager. Direct unwrap.
                    let r = s
                        .execute(&format!("UPDATE hot SET v = v + 1 WHERE k = {t}"))
                        .unwrap();
                    assert_eq!(r.affected, 1);
                }
            });
        }
    });
    let r = db.session().execute("SELECT x.v FROM hot x").unwrap();
    assert_eq!(r.rows.len(), n);
    assert!(
        r.rows
            .iter()
            .all(|row| row[0].as_int().unwrap() == per_thread as i64),
        "every increment must have landed: {:?}",
        r.rows
    );
    let after = db.metrics().unwrap();
    assert_eq!(
        after.lock_wait_die_aborts, before.lock_wait_die_aborts,
        "disjoint-row writers must never wait-die"
    );
    assert_eq!(
        after.row_lock_conflicts, before.row_lock_conflicts,
        "disjoint-row writers must never conflict on a row"
    );
    assert!(
        after.row_lock_exclusive >= before.row_lock_exclusive + (n * per_thread) as u64,
        "every update row-locked its target"
    );
    assert_eq!(after.lock_timeouts, 0, "nothing may time out");
}

#[test]
fn tcp_clients_hammer_concurrently() {
    let db = shared(64);
    let Ok(server) = Server::start(db.clone(), "127.0.0.1:0") else {
        eprintln!("skipping: cannot bind a TCP socket in this environment");
        return;
    };
    let addr = server.addr();
    {
        let mut c = Client::connect(addr).unwrap();
        c.execute("CREATE TABLE t (a INT, b TEXT)")
            .unwrap()
            .unwrap();
    }
    let n = thread_count();
    let per_client = 50;
    std::thread::scope(|scope| {
        for t in 0..n {
            scope.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for i in 0..per_client {
                    let key = t * per_client + i;
                    loop {
                        match c
                            .execute(&format!("INSERT INTO t VALUES ({key}, 'c{t}')"))
                            .unwrap()
                        {
                            Ok(_) => break,
                            Err(msg) => {
                                assert!(msg.contains("conflict"), "unexpected server error: {msg}");
                                std::thread::sleep(Duration::from_micros(500));
                            }
                        }
                    }
                }
            });
        }
    });
    let mut c = Client::connect(addr).unwrap();
    let r = c.execute("SELECT v.a FROM t v").unwrap().unwrap();
    assert_eq!(r.rows.len(), n * per_client);
    server.stop();
}

/// Latch-crabbing probe at the storage layer: a writer splits leaves
/// (and the root) while readers descend the same tree. The server's
/// statement latch never lets SQL readers see a mid-split tree, so
/// this drives the B+-tree directly: readers open their own handle on
/// the last published root and must find every pre-existing key by
/// point lookup and by a full leaf-chain walk, no matter where the
/// writer is in a split.
#[test]
fn btree_readers_traverse_a_consistent_tree_mid_split() {
    use std::sync::atomic::{AtomicBool, AtomicU32};
    use storage::btree::BPlusTree;
    use storage::heap::Rid;

    let pool = storage::BufferPool::new(storage::pager::Pager::in_memory(), 64);
    let mut tree = BPlusTree::create(&pool).unwrap();
    let rid = |k: i64| Rid {
        page: k as u32,
        slot: (k % 100) as u16,
    };
    let preloaded = 400i64;
    for k in 0..preloaded {
        tree.insert(&pool, &Datum::Int(k), rid(k)).unwrap();
    }
    let root = AtomicU32::new(tree.root);
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let (pool, root, done) = (&pool, &root, &done);
        scope.spawn(move || {
            // Writer: appends force steady leaf splits on the rightmost
            // edge, plus root splits as the tree deepens.
            let mut tree = tree;
            for k in preloaded..preloaded + 4000 {
                tree.insert(pool, &Datum::Int(k), rid(k)).unwrap();
                root.store(tree.root, Ordering::Release);
            }
            done.store(true, Ordering::Release);
        });
        for t in 0..2i64 {
            scope.spawn(move || {
                let mut rounds = 0u32;
                while !done.load(Ordering::Acquire) || rounds == 0 {
                    rounds += 1;
                    let snapshot = BPlusTree::open(root.load(Ordering::Acquire));
                    // Every pre-existing key must resolve by descent.
                    for k in (t..preloaded).step_by(29) {
                        let hits = snapshot.lookup(pool, &Datum::Int(k)).unwrap();
                        assert_eq!(hits, vec![rid(k)], "key {k} lost mid-split");
                    }
                    // And the leaf chain must be consistent end to end:
                    // a range walk over the pre-existing prefix sees
                    // each key exactly once.
                    let rids = snapshot
                        .range(
                            pool,
                            std::ops::Bound::Unbounded,
                            std::ops::Bound::Included(&Datum::Int(preloaded - 1)),
                        )
                        .unwrap();
                    assert_eq!(
                        rids.len(),
                        preloaded as usize,
                        "leaf-chain walk missed or duplicated keys mid-split"
                    );
                    let unique: BTreeSet<_> = rids.iter().copied().collect();
                    assert_eq!(unique.len(), rids.len(), "duplicate rids in chain walk");
                }
            });
        }
    });
}

/// The statement-latch headline, proven with timestamps instead of
/// throughput: one session runs a slow snapshot SELECT (a self-join)
/// while another completes quick snapshot SELECTs strictly inside the
/// slow statement's wall-clock window. Under the retired statement
/// mutex the quick reader queued behind the join and zero nested
/// completions were possible; on the latch's read side they overlap.
#[test]
fn two_snapshot_selects_overlap_in_time() {
    use std::sync::atomic::AtomicBool;
    use std::time::Instant;

    let db = shared(64);
    {
        let mut s = db.session();
        s.execute("CREATE TABLE ovl (k INT, v INT)").unwrap();
        for chunk in 0..10i64 {
            let rows: Vec<String> = (0..100)
                .map(|i| {
                    let k = chunk * 100 + i;
                    format!("({k}, {})", k % 13)
                })
                .collect();
            s.execute(&format!("INSERT INTO ovl VALUES {}", rows.join(", ")))
                .unwrap();
        }
    }
    // Scheduling can always delay one thread; retry a few times and
    // require one clean demonstration of overlap.
    for attempt in 0..5 {
        let barrier = std::sync::Barrier::new(2);
        let t0 = Instant::now();
        let slow_done = AtomicBool::new(false);
        let (slow_window, nested) = std::thread::scope(|scope| {
            let (barrier, slow_done, db) = (&barrier, &slow_done, &db);
            let slow = scope.spawn(move || {
                let mut s = db.session();
                barrier.wait();
                let started = t0.elapsed();
                let r = s
                    .execute("SELECT a.k FROM ovl a, ovl b WHERE a.v = b.v")
                    .unwrap();
                let ended = t0.elapsed();
                slow_done.store(true, Ordering::Release);
                assert!(!r.rows.is_empty());
                (started, ended)
            });
            let fast = scope.spawn(move || {
                let mut s = db.session();
                barrier.wait();
                let mut windows = Vec::new();
                while !slow_done.load(Ordering::Acquire) {
                    let started = t0.elapsed();
                    let r = s.execute("SELECT a.v FROM ovl a WHERE a.k = 123").unwrap();
                    assert_eq!(r.rows.len(), 1);
                    windows.push((started, t0.elapsed()));
                }
                windows
            });
            (slow.join().unwrap(), fast.join().unwrap())
        });
        let strictly_inside = nested
            .iter()
            .filter(|(s, e)| *s > slow_window.0 && *e < slow_window.1)
            .count();
        if strictly_inside >= 1 {
            return; // overlap demonstrated with timestamps
        }
        eprintln!(
            "attempt {attempt}: slow window {slow_window:?}, \
             {} fast statements, none strictly inside — retrying",
            nested.len()
        );
    }
    panic!("snapshot SELECTs never overlapped: reads are serializing");
}

//! Observability suite: the unified metrics registry, EXPLAIN ANALYZE,
//! and the server's STATS surface.
//!
//! The counters are only trustworthy if independent accountings agree,
//! so these tests are differential where possible:
//!
//! * the registry's `fault_ins`/`buffer_hits` vs. the buffer pool's
//!   own `PoolStats` (two separate counting sites);
//! * the registry's `wal_bytes` vs. the WAL file's actual on-disk
//!   length after a scripted workload;
//! * `lock_waits` stays zero when concurrent sessions touch disjoint
//!   tables (nothing to wait for);
//! * `EXPLAIN ANALYZE` actual page reads: indexed point lookup must
//!   beat the full scan on the same predicate (the paper's cost model,
//!   measured rather than estimated).

use rqs::{Database, Datum};
use server::net::{Client, Server};
use server::SharedDatabase;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use storage::engine::wal_path;

static NEXT_DB: AtomicUsize = AtomicUsize::new(0);

fn temp_db(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rqs-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!(
        "{tag}-{}.rqs",
        NEXT_DB.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(wal_path(&path));
    path
}

fn cleanup(path: &Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(wal_path(path));
}

/// Loads a table with enough rows to spill an 8-page pool.
fn load_rows(db: &mut Database, n: i64) {
    db.execute("CREATE TABLE empl (eno INT, nam TEXT, sal INT)")
        .unwrap();
    for chunk_start in (0..n).step_by(100) {
        let rows: Vec<String> = (chunk_start..(chunk_start + 100).min(n))
            .map(|i| format!("({i}, 'e{i}', {})", 10_000 + i))
            .collect();
        db.execute(&format!("INSERT INTO empl VALUES {}", rows.join(", ")))
            .unwrap();
    }
}

#[test]
fn registry_and_pool_stats_agree_on_page_fetches() {
    let mut db = Database::paged(8).unwrap();
    load_rows(&mut db, 1000);
    for probe in ["e1", "e500", "e999"] {
        db.execute(&format!("SELECT v.sal FROM empl v WHERE v.nam = '{probe}'"))
            .unwrap();
    }
    let snap = db.backend().metrics();
    let stats = db.backend().stats();
    // Two independent counting sites must tell the same story: every
    // fetch is exactly one fault-in or one hit.
    assert!(snap.fault_ins > 0, "workload must fault pages in");
    assert!(snap.buffer_hits > 0, "workload must hit resident frames");
    assert_eq!(snap.fault_ins, stats.page_reads, "fault accounting");
    assert_eq!(snap.buffer_hits, stats.buffer_hits, "hit accounting");
}

#[test]
fn wal_counters_match_the_file_on_disk() {
    let path = temp_db("walcount");
    {
        let mut db = Database::open_paged(&path, 16).unwrap();
        db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        for i in 0..50 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'row{i}')"))
                .unwrap();
        }
        db.execute("UPDATE t SET b = 'rewritten' WHERE a >= 40")
            .unwrap();
        db.execute("DELETE FROM t WHERE a < 5").unwrap();
        let snap = db.backend().metrics();
        let stats = db.backend().stats();
        assert!(snap.wal_appends > 0, "DML must log");
        assert!(snap.wal_fsyncs > 0, "commits must force the log");
        // Registry vs. the WAL's own running stats.
        assert_eq!(snap.wal_appends, stats.wal_appends, "frame accounting");
        assert_eq!(snap.wal_bytes, stats.wal_bytes, "byte accounting");
        // Registry vs. the bytes actually on disk: every committed
        // statement forced the log, so the file length is exactly the
        // appended bytes plus the 8-byte magic/version file header
        // (recovery reset the log to just that header on open).
        let on_disk = std::fs::metadata(wal_path(&path)).unwrap().len();
        assert_eq!(snap.wal_bytes + 8, on_disk, "WAL file length");
    }
    cleanup(&path);
}

#[test]
fn disjoint_table_sessions_never_wait_on_locks() {
    let shared = SharedDatabase::paged(64).unwrap();
    {
        let mut setup = shared.session();
        for t in 0..4 {
            setup
                .execute(&format!("CREATE TABLE t{t} (a INT)"))
                .unwrap();
        }
    }
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let shared = shared.clone();
            scope.spawn(move || {
                let mut s = shared.session();
                for i in 0..50 {
                    s.execute(&format!("INSERT INTO t{t} VALUES ({i})"))
                        .unwrap();
                    s.execute(&format!("SELECT v.a FROM t{t} v WHERE v.a = {i}"))
                        .unwrap();
                }
            });
        }
    });
    let snap = shared.metrics().unwrap();
    assert!(snap.lock_shared > 0, "reads must take shared locks");
    assert!(snap.lock_exclusive > 0, "writes must take exclusive locks");
    assert_eq!(snap.lock_waits, 0, "disjoint tables must never block");
    assert_eq!(snap.lock_wait_die_aborts, 0, "nor abort");
}

/// Pulls `key=value` integers out of an `Actual:` EXPLAIN ANALYZE line.
fn actual_value(plan: &[Vec<Datum>], key: &str) -> u64 {
    let needle = format!("{key}=");
    for row in plan {
        let Datum::Text(line) = &row[0] else { continue };
        if let Some(pos) = line.find(&needle) {
            let rest = &line[pos + needle.len()..];
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            return digits.parse().unwrap();
        }
    }
    panic!("no `{key}=` token in plan: {plan:?}");
}

#[test]
fn explain_analyze_shows_index_beating_full_scan() {
    let mut db = Database::paged(8).unwrap();
    load_rows(&mut db, 1000);
    let probe = "EXPLAIN ANALYZE SELECT v.sal FROM empl v WHERE v.nam = 'e777'";
    let scan = db.execute(probe).unwrap();
    assert_eq!(scan.columns, ["plan"]);
    db.execute("CREATE INDEX ON empl (nam)").unwrap();
    let indexed = db.execute(probe).unwrap();
    assert_eq!(actual_value(&scan.rows, "rows"), 1);
    assert_eq!(actual_value(&indexed.rows, "rows"), 1);
    let scan_reads = actual_value(&scan.rows, "page_reads");
    let indexed_reads = actual_value(&indexed.rows, "page_reads");
    assert!(
        indexed_reads < scan_reads,
        "index must touch fewer pages: {indexed_reads} vs {scan_reads}"
    );
    assert!(
        actual_value(&indexed.rows, "rows_scanned") < actual_value(&scan.rows, "rows_scanned"),
        "index must scan fewer rows"
    );
}

#[test]
fn explain_covers_update_and_delete() {
    for mut db in [Database::new(), Database::paged(8).unwrap()] {
        db.execute("CREATE TABLE t (k INT, pad TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
            .unwrap();
        let full = db.explain("UPDATE t SET pad = 'x' WHERE k = 1").unwrap();
        assert!(full.contains("Update t"), "{full}");
        assert!(full.contains("FullScan"), "{full}");
        db.execute("CREATE INDEX ON t (k)").unwrap();
        let eq = db.explain("UPDATE t SET pad = 'x' WHERE k = 1").unwrap();
        assert!(eq.contains("IndexEq col#0 = 1"), "{eq}");
        let range = db.explain("DELETE FROM t WHERE k >= 1 AND k < 2").unwrap();
        assert!(range.contains("Delete t"), "{range}");
        assert!(range.contains("IndexRange col#0"), "{range}");
        let truncate = db.explain("DELETE FROM t").unwrap();
        assert!(truncate.contains("Truncate"), "{truncate}");
        // The statement surface renders the same text as plan rows, and
        // EXPLAIN must not mutate anything.
        let r = db.execute("EXPLAIN DELETE FROM t WHERE k = 1").unwrap();
        assert_eq!(r.columns, ["plan"]);
        assert!(!r.rows.is_empty());
        assert_eq!(db.execute("SELECT v.k FROM t v").unwrap().rows.len(), 2);
        // EXPLAIN ANALYZE stays SELECT-only; other statements are
        // rejected at parse time.
        assert!(db.execute("EXPLAIN ANALYZE DELETE FROM t").is_err());
        assert!(db.execute("EXPLAIN INSERT INTO t VALUES (3, 'c')").is_err());
    }
}

#[test]
fn failed_statements_still_report_their_io() {
    let mut db = Database::paged(8).unwrap();
    db.execute("CREATE TABLE t (a INT, CHECK (a BETWEEN 0 AND 10))")
        .unwrap();
    for i in 0..10 {
        db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    // The update scans the table, then fails the CHECK re-validation —
    // its page fetches must still be accounted.
    let err = db.execute("UPDATE t SET a = 99");
    assert!(err.is_err(), "CHECK must reject the rewrite");
    let m = db.last_statement_metrics();
    assert!(
        m.page_reads + m.buffer_hits > 0,
        "failed statement lost its I/O accounting: {m:?}"
    );
    assert!(m.elapsed_nanos > 0, "wall clock must be recorded");
    // A successful statement reports through both surfaces identically.
    let ok = db.execute("SELECT v.a FROM t v").unwrap();
    assert_eq!(&ok.metrics, db.last_statement_metrics());
    assert!(ok.metrics.elapsed_nanos >= ok.metrics.exec_nanos);
}

#[test]
fn stats_over_tcp_reports_nonzero_buffer_counters() {
    let Ok(server) = Server::start(SharedDatabase::paged(16).unwrap(), "127.0.0.1:0") else {
        eprintln!("skipping: cannot bind a TCP socket in this environment");
        return;
    };
    let mut c = Client::connect(server.addr()).unwrap();
    c.execute("CREATE TABLE t (a INT, b TEXT)")
        .unwrap()
        .unwrap();
    for i in 0..20 {
        c.execute(&format!("INSERT INTO t VALUES ({i}, 'x{i}')"))
            .unwrap()
            .unwrap();
    }
    c.execute("SELECT v.b FROM t v WHERE v.a = 7")
        .unwrap()
        .unwrap();
    let stats = c.execute("STATS").unwrap().unwrap();
    assert_eq!(stats.columns, ["counter", "value"]);
    let value = |name: &str| -> u64 {
        let cell = format!("'{name}'");
        stats
            .rows
            .iter()
            .find(|r| r[0] == cell)
            .unwrap_or_else(|| panic!("no {name} row in STATS"))[1]
            .parse()
            .unwrap()
    };
    // A fresh in-memory paged database allocates its pages rather than
    // faulting them in, but repeated catalog/heap access must hit
    // resident frames.
    assert!(value("buffer_hits") > 0, "workload must hit the pool");
    assert!(value("wal_appends") > 0, "inserts must have logged");
    assert!(value("lock_exclusive") > 0, "inserts must have locked");
    // Session counters ride along: this connection has executed
    // 1 DDL + 20 inserts + 1 select + this STATS call.
    assert_eq!(value("session_statements"), 23);
    assert_eq!(value("session_retries"), 0);
    // Every engine counter the registry declares is on the wire.
    for name in storage::MetricsSnapshot::NAMES {
        value(name);
    }
    server.stop();
}

//! Observability suite: the unified metrics registry, latency
//! histograms, per-statement trace spans, the slow-statement log,
//! EXPLAIN ANALYZE, and the server's STATS surface.
//!
//! The counters are only trustworthy if independent accountings agree,
//! so these tests are differential where possible:
//!
//! * the registry's `fault_ins`/`buffer_hits` vs. the buffer pool's
//!   own `PoolStats` (two separate counting sites);
//! * the registry's `wal_bytes` vs. the WAL file's actual on-disk
//!   length after a scripted workload;
//! * the fsync histogram's sample count vs. the `wal_fsyncs` counter,
//!   and the lock-wait histogram's total vs. `lock_wait_nanos` (the
//!   same events, counted at the same sites, reduced two ways);
//! * a statement's trace spans vs. its own `elapsed_nanos` (the spans
//!   partition the statement);
//! * `lock_waits` stays zero when concurrent sessions touch disjoint
//!   tables (nothing to wait for);
//! * `EXPLAIN ANALYZE` actual page reads: indexed point lookup must
//!   beat the full scan on the same predicate (the paper's cost model,
//!   measured rather than estimated) — and under ANALYZE, UPDATE and
//!   predicated DELETE really execute and report the same actuals.

use rqs::{Database, Datum};
use server::net::{Client, Server};
use server::SharedDatabase;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use storage::engine::wal_path;

static NEXT_DB: AtomicUsize = AtomicUsize::new(0);

fn temp_db(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rqs-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!(
        "{tag}-{}.rqs",
        NEXT_DB.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(wal_path(&path));
    path
}

fn cleanup(path: &Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(wal_path(path));
}

/// Loads a table with enough rows to spill an 8-page pool.
fn load_rows(db: &mut Database, n: i64) {
    db.execute("CREATE TABLE empl (eno INT, nam TEXT, sal INT)")
        .unwrap();
    for chunk_start in (0..n).step_by(100) {
        let rows: Vec<String> = (chunk_start..(chunk_start + 100).min(n))
            .map(|i| format!("({i}, 'e{i}', {})", 10_000 + i))
            .collect();
        db.execute(&format!("INSERT INTO empl VALUES {}", rows.join(", ")))
            .unwrap();
    }
}

#[test]
fn registry_and_pool_stats_agree_on_page_fetches() {
    let mut db = Database::paged(8).unwrap();
    load_rows(&mut db, 1000);
    for probe in ["e1", "e500", "e999"] {
        db.execute(&format!("SELECT v.sal FROM empl v WHERE v.nam = '{probe}'"))
            .unwrap();
    }
    let snap = db.backend().metrics();
    let stats = db.backend().stats();
    // Two independent counting sites must tell the same story: every
    // fetch is exactly one fault-in or one hit.
    assert!(snap.fault_ins > 0, "workload must fault pages in");
    assert!(snap.buffer_hits > 0, "workload must hit resident frames");
    assert_eq!(snap.fault_ins, stats.page_reads, "fault accounting");
    assert_eq!(snap.buffer_hits, stats.buffer_hits, "hit accounting");
}

#[test]
fn wal_counters_match_the_file_on_disk() {
    let path = temp_db("walcount");
    {
        let mut db = Database::open_paged(&path, 16).unwrap();
        db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        for i in 0..50 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'row{i}')"))
                .unwrap();
        }
        db.execute("UPDATE t SET b = 'rewritten' WHERE a >= 40")
            .unwrap();
        db.execute("DELETE FROM t WHERE a < 5").unwrap();
        let snap = db.backend().metrics();
        let stats = db.backend().stats();
        assert!(snap.wal_appends > 0, "DML must log");
        assert!(snap.wal_fsyncs > 0, "commits must force the log");
        // Registry vs. the WAL's own running stats.
        assert_eq!(snap.wal_appends, stats.wal_appends, "frame accounting");
        assert_eq!(snap.wal_bytes, stats.wal_bytes, "byte accounting");
        // Registry vs. the bytes actually on disk: every committed
        // statement forced the log, so the file length is exactly the
        // appended bytes plus the 8-byte magic/version file header
        // (recovery reset the log to just that header on open).
        let on_disk = std::fs::metadata(wal_path(&path)).unwrap().len();
        assert_eq!(snap.wal_bytes + 8, on_disk, "WAL file length");
    }
    cleanup(&path);
}

#[test]
fn disjoint_table_sessions_never_wait_on_locks() {
    let shared = SharedDatabase::paged(64).unwrap();
    {
        let mut setup = shared.session();
        for t in 0..4 {
            setup
                .execute(&format!("CREATE TABLE t{t} (a INT)"))
                .unwrap();
        }
    }
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let shared = shared.clone();
            scope.spawn(move || {
                let mut s = shared.session();
                for i in 0..50 {
                    s.execute(&format!("INSERT INTO t{t} VALUES ({i})"))
                        .unwrap();
                    s.execute(&format!("SELECT v.a FROM t{t} v WHERE v.a = {i}"))
                        .unwrap();
                }
            });
        }
    });
    let snap = shared.metrics().unwrap();
    // The SELECTs are lock-free snapshot reads; the shared locks here
    // are the INSERTs' schema-S acquisitions.
    assert!(snap.lock_shared > 0, "writes must take the schema shared");
    assert!(snap.lock_exclusive > 0, "writes must take exclusive locks");
    assert_eq!(snap.lock_waits, 0, "disjoint tables must never block");
    assert_eq!(snap.lock_wait_die_aborts, 0, "nor abort");
}

/// The snapshot-read observability invariant: every snapshot SELECT
/// opens exactly one read view (`snapshot_reads` bumps per statement)
/// while the lock counters stay flat for a pure-read session — the
/// differential proof that reads really skip the lock manager. The
/// second half walks one version through its lifecycle: a reader's
/// open transaction forces an overwritten row's prior to be kept
/// (`versions_kept`), and closing the reader lets GC reclaim it
/// (`versions_gc`).
#[test]
fn snapshot_read_counters_track_views_and_version_lifecycle() {
    let shared = SharedDatabase::paged(64).unwrap();
    {
        let mut setup = shared.session();
        setup.execute("CREATE TABLE t (k INT, v INT)").unwrap();
        setup
            .execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
            .unwrap();
    }
    let before = shared.metrics().unwrap();
    let mut reader = shared.session();
    for _ in 0..5 {
        assert_eq!(reader.execute("SELECT x.k FROM t x").unwrap().rows.len(), 3);
    }
    let mid = shared.metrics().unwrap();
    assert_eq!(
        mid.snapshot_reads,
        before.snapshot_reads + 5,
        "one read view per snapshot SELECT"
    );
    assert_eq!(mid.lock_shared, before.lock_shared, "no shared locks");
    assert_eq!(
        mid.lock_exclusive, before.lock_exclusive,
        "no exclusive locks"
    );
    assert_eq!(mid.lock_waits, before.lock_waits, "nothing to wait on");

    // Version lifecycle: pin a snapshot, overwrite a row under it.
    reader.execute("BEGIN").unwrap();
    assert_eq!(
        reader
            .execute("SELECT x.v FROM t x WHERE x.k = 1")
            .unwrap()
            .rows,
        vec![vec![Datum::Int(10)]]
    );
    let mut writer = shared.session();
    writer.execute("UPDATE t SET v = 11 WHERE k = 1").unwrap();
    let held = shared.metrics().unwrap();
    assert!(
        held.versions_kept > mid.versions_kept,
        "the overwritten row's prior version must be kept for the reader"
    );
    // The pinned snapshot still resolves to the prior version.
    assert_eq!(
        reader
            .execute("SELECT x.v FROM t x WHERE x.k = 1")
            .unwrap()
            .rows,
        vec![vec![Datum::Int(10)]]
    );
    reader.execute("COMMIT").unwrap();
    let after = shared.metrics().unwrap();
    assert!(
        after.versions_gc > mid.versions_gc,
        "closing the last snapshot that could see the prior must GC it"
    );
    // A fresh snapshot sees the overwrite.
    assert_eq!(
        reader
            .execute("SELECT x.v FROM t x WHERE x.k = 1")
            .unwrap()
            .rows,
        vec![vec![Datum::Int(11)]]
    );
}

/// Pulls `key=value` integers out of an `Actual:` EXPLAIN ANALYZE line.
fn actual_value(plan: &[Vec<Datum>], key: &str) -> u64 {
    let needle = format!("{key}=");
    for row in plan {
        let Datum::Text(line) = &row[0] else { continue };
        if let Some(pos) = line.find(&needle) {
            let rest = &line[pos + needle.len()..];
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            return digits.parse().unwrap();
        }
    }
    panic!("no `{key}=` token in plan: {plan:?}");
}

#[test]
fn explain_analyze_shows_index_beating_full_scan() {
    let mut db = Database::paged(8).unwrap();
    load_rows(&mut db, 1000);
    let probe = "EXPLAIN ANALYZE SELECT v.sal FROM empl v WHERE v.nam = 'e777'";
    let scan = db.execute(probe).unwrap();
    assert_eq!(scan.columns, ["plan"]);
    db.execute("CREATE INDEX ON empl (nam)").unwrap();
    let indexed = db.execute(probe).unwrap();
    assert_eq!(actual_value(&scan.rows, "rows"), 1);
    assert_eq!(actual_value(&indexed.rows, "rows"), 1);
    let scan_reads = actual_value(&scan.rows, "page_reads");
    let indexed_reads = actual_value(&indexed.rows, "page_reads");
    assert!(
        indexed_reads < scan_reads,
        "index must touch fewer pages: {indexed_reads} vs {scan_reads}"
    );
    assert!(
        actual_value(&indexed.rows, "rows_scanned") < actual_value(&scan.rows, "rows_scanned"),
        "index must scan fewer rows"
    );
}

#[test]
fn explain_covers_update_and_delete() {
    for mut db in [Database::new(), Database::paged(8).unwrap()] {
        db.execute("CREATE TABLE t (k INT, pad TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
            .unwrap();
        let full = db.explain("UPDATE t SET pad = 'x' WHERE k = 1").unwrap();
        assert!(full.contains("Update t"), "{full}");
        assert!(full.contains("FullScan"), "{full}");
        db.execute("CREATE INDEX ON t (k)").unwrap();
        let eq = db.explain("UPDATE t SET pad = 'x' WHERE k = 1").unwrap();
        assert!(eq.contains("IndexEq col#0 = 1"), "{eq}");
        let range = db.explain("DELETE FROM t WHERE k >= 1 AND k < 2").unwrap();
        assert!(range.contains("Delete t"), "{range}");
        assert!(range.contains("IndexRange col#0"), "{range}");
        let truncate = db.explain("DELETE FROM t").unwrap();
        assert!(truncate.contains("Truncate"), "{truncate}");
        // The statement surface renders the same text as plan rows, and
        // EXPLAIN must not mutate anything.
        let r = db.execute("EXPLAIN DELETE FROM t WHERE k = 1").unwrap();
        assert_eq!(r.columns, ["plan"]);
        assert!(!r.rows.is_empty());
        assert_eq!(db.execute("SELECT v.k FROM t v").unwrap().rows.len(), 2);
        // EXPLAIN ANALYZE executes DML for real, so the unpredicated
        // DELETE (a full truncate) stays refused; INSERT is rejected
        // outright at parse time.
        assert!(db.execute("EXPLAIN ANALYZE DELETE FROM t").is_err());
        assert!(db.execute("EXPLAIN INSERT INTO t VALUES (3, 'c')").is_err());
    }
}

#[test]
fn explain_analyze_executes_update_and_predicated_delete() {
    for mut db in [Database::new(), Database::paged(8).unwrap()] {
        db.execute("CREATE TABLE t (k INT, pad TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
            .unwrap();
        // ANALYZE on an UPDATE renders the plan, then really executes:
        // the Actual line reports the mutated row count and the table
        // reflects the rewrite afterwards.
        let upd = db
            .execute("EXPLAIN ANALYZE UPDATE t SET pad = 'x' WHERE k >= 2")
            .unwrap();
        assert_eq!(upd.columns, ["plan"]);
        let text = upd
            .rows
            .iter()
            .map(|r| r[0].to_string())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("Update t"), "{text}");
        assert_eq!(actual_value(&upd.rows, "rows"), 2, "{text}");
        let rewritten = db.execute("SELECT v.k FROM t v WHERE v.pad = 'x'").unwrap();
        assert_eq!(rewritten.rows.len(), 2, "ANALYZE must have mutated");
        // Same for a predicated DELETE; the actuals carry I/O counters
        // in the same `key=value` grammar the SELECT path uses.
        let del = db
            .execute("EXPLAIN ANALYZE DELETE FROM t WHERE k = 1")
            .unwrap();
        assert_eq!(actual_value(&del.rows, "rows"), 1);
        let _ = actual_value(&del.rows, "elapsed_us");
        let _ = actual_value(&del.rows, "page_reads");
        assert_eq!(db.execute("SELECT v.k FROM t v").unwrap().rows.len(), 2);
    }
}

#[test]
fn failed_statements_still_report_their_io() {
    let mut db = Database::paged(8).unwrap();
    db.execute("CREATE TABLE t (a INT, CHECK (a BETWEEN 0 AND 10))")
        .unwrap();
    for i in 0..10 {
        db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    // The update scans the table, then fails the CHECK re-validation —
    // its page fetches must still be accounted.
    let err = db.execute("UPDATE t SET a = 99");
    assert!(err.is_err(), "CHECK must reject the rewrite");
    let m = db.last_statement_metrics();
    assert!(
        m.page_reads + m.buffer_hits > 0,
        "failed statement lost its I/O accounting: {m:?}"
    );
    assert!(m.elapsed_nanos > 0, "wall clock must be recorded");
    // A successful statement reports through both surfaces identically.
    let ok = db.execute("SELECT v.a FROM t v").unwrap();
    assert_eq!(&ok.metrics, db.last_statement_metrics());
    assert!(ok.metrics.elapsed_nanos >= ok.metrics.exec_nanos);
}

#[test]
fn stats_over_tcp_reports_nonzero_buffer_counters() {
    let Ok(server) = Server::start(SharedDatabase::paged(16).unwrap(), "127.0.0.1:0") else {
        eprintln!("skipping: cannot bind a TCP socket in this environment");
        return;
    };
    let mut c = Client::connect(server.addr()).unwrap();
    c.execute("CREATE TABLE t (a INT, b TEXT)")
        .unwrap()
        .unwrap();
    for i in 0..20 {
        c.execute(&format!("INSERT INTO t VALUES ({i}, 'x{i}')"))
            .unwrap()
            .unwrap();
    }
    c.execute("SELECT v.b FROM t v WHERE v.a = 7")
        .unwrap()
        .unwrap();
    // The typed helper parses the two-column wire rows into a map.
    let stats = c.stats().unwrap();
    let value = |name: &str| -> u64 {
        *stats
            .get(name)
            .unwrap_or_else(|| panic!("no {name} row in STATS"))
    };
    // A fresh in-memory paged database allocates its pages rather than
    // faulting them in, but repeated catalog/heap access must hit
    // resident frames.
    assert!(value("buffer_hits") > 0, "workload must hit the pool");
    assert!(value("wal_appends") > 0, "inserts must have logged");
    assert!(value("lock_exclusive") > 0, "inserts must have locked");
    // Session counters ride along: this connection has executed
    // 1 DDL + 20 inserts + 1 select + this STATS call.
    assert_eq!(value("session_statements"), 23);
    assert_eq!(value("session_retries"), 0);
    // Every engine counter the registry declares is on the wire.
    for name in storage::MetricsSnapshot::NAMES {
        value(name);
    }
    server.stop();
}

#[test]
fn fsync_histogram_count_matches_the_counter() {
    let path = temp_db("fsynchist");
    {
        let mut db = Database::open_paged(&path, 16).unwrap();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        for i in 0..25 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        db.execute("UPDATE t SET a = 99 WHERE a < 5").unwrap();
        let snap = db.backend().metrics();
        let hist = db.backend().histograms();
        // Same events, two reductions: every fsync bumps the counter
        // and records one histogram sample, at the same call site.
        assert!(snap.wal_fsyncs > 0, "commits must force the log");
        assert_eq!(hist.wal_fsync.count(), snap.wal_fsyncs, "fsync count");
        assert!(
            hist.wal_fsync.total_nanos > 0,
            "file-backed fsyncs take measurable time"
        );
        assert!(hist.wal_fsync.max_nanos >= hist.wal_fsync.percentile(50.0));
        // Every committed mutating statement records one commit sample.
        assert!(hist.commit.count() > 0, "commits must be timed");
        assert!(
            hist.commit.total_nanos >= hist.wal_fsync.total_nanos,
            "a commit contains its fsync"
        );
    }
    cleanup(&path);
}

#[test]
fn lock_wait_histogram_totals_match_the_counter() {
    let shared = SharedDatabase::paged(64).unwrap();
    // This test manufactures a reader-blocks-on-writer wait, which
    // only exists in the table-`S` regime — under snapshot reads the
    // SELECT would take no locks and never wait. Pin the baseline.
    shared.set_snapshot_reads(false);
    {
        let mut setup = shared.session();
        setup.execute("CREATE TABLE t (a INT)").unwrap();
    }
    // Wait-die: the *older* transaction waits. Session A begins first
    // (smaller owner timestamp), B begins second and grabs the table;
    // A's read then genuinely blocks until B commits. Two handshakes
    // pin the order: A BEGINs before B does, and B holds its insert
    // locks before A issues the read.
    let (begun_tx, begun_rx) = std::sync::mpsc::channel();
    let (held_tx, held_rx) = std::sync::mpsc::channel::<()>();
    std::thread::scope(|scope| {
        let shared_a = shared.clone();
        scope.spawn(move || {
            let mut a = shared_a.session();
            a.execute("BEGIN").unwrap();
            begun_tx.send(()).unwrap();
            held_rx.recv().unwrap();
            // Blocks on B's insert locks until B commits.
            let rows = a.execute("SELECT v.a FROM t v").unwrap();
            assert_eq!(rows.rows.len(), 1);
            a.execute("COMMIT").unwrap();
        });
        begun_rx.recv().unwrap();
        let mut b = shared.session();
        b.execute("BEGIN").unwrap();
        b.execute("INSERT INTO t VALUES (1)").unwrap();
        held_tx.send(()).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        b.execute("COMMIT").unwrap();
    });
    let snap = shared.metrics().unwrap();
    let hist = shared.histograms().unwrap();
    assert!(snap.lock_waits > 0, "A must have blocked on B");
    // The histogram and the counters are fed the same `waited` value at
    // the same site, so after quiescence they agree exactly.
    assert_eq!(hist.lock_wait.count(), snap.lock_waits, "wait count");
    assert_eq!(
        hist.lock_wait.total_nanos, snap.lock_wait_nanos,
        "wait nanos"
    );
    // A slept through most of B's 150 ms hold; the histogram must have
    // seen a wait of that order (generous floor for scheduler jitter).
    assert!(
        hist.lock_wait.max_nanos >= 50_000_000,
        "max wait {} ns is shorter than B's hold",
        hist.lock_wait.max_nanos
    );
}

#[test]
fn trace_spans_partition_statement_elapsed() {
    let mut db = Database::paged(8).unwrap();
    db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        .unwrap();
    let trace = db.last_statement_trace().clone();
    assert_eq!(
        trace.elapsed_nanos,
        db.last_statement_metrics().elapsed_nanos,
        "trace and metrics report the same wall clock"
    );
    let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
    assert!(names.contains(&"parse"), "spans: {names:?}");
    assert!(names.contains(&"exec"), "spans: {names:?}");
    assert!(
        names.contains(&"commit"),
        "a paged INSERT commits: {names:?}"
    );
    // The spans partition the statement: they sum to at most the wall
    // clock, and the unattributed remainder is only probe overhead.
    let sum: u64 = trace.spans.iter().map(|s| s.nanos).sum();
    assert!(
        sum <= trace.elapsed_nanos,
        "{sum} > {}",
        trace.elapsed_nanos
    );
    assert!(
        trace.elapsed_nanos - sum < 1_000_000,
        "unattributed gap too large: {} of {}",
        trace.elapsed_nanos - sum,
        trace.elapsed_nanos
    );
    // The commit span carries the durability I/O: the WAL frames this
    // statement appended are attributed to commit, not execution.
    let commit = trace.spans.iter().find(|s| s.name == "commit").unwrap();
    assert!(commit.wal_appends > 0, "commit span owns the WAL traffic");
    // A read-only statement has no commit span at all.
    db.execute("SELECT v.a FROM t v").unwrap();
    let read = db.last_statement_trace();
    assert!(
        read.spans.iter().all(|s| s.name != "commit"),
        "reads must not report a commit span: {read:?}"
    );
}

#[test]
fn slow_log_captures_statements_and_respects_capacity() {
    let shared = SharedDatabase::paged(16).unwrap();
    // Threshold zero: everything is slow; capacity 4 bounds the ring.
    shared.set_slow_log(Duration::ZERO, 4);
    let mut s = shared.session();
    s.execute("CREATE TABLE t (a INT)").unwrap();
    for i in 0..6 {
        s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    s.execute("SELECT v.a FROM t v WHERE v.a = 3").unwrap();
    let entries = shared.slow_entries();
    assert_eq!(entries.len(), 4, "ring must evict down to capacity");
    // The newest entry is the SELECT; eviction dropped the oldest.
    let last = entries.last().unwrap();
    assert_eq!(last.sql, "SELECT v.a FROM t v WHERE v.a = 3");
    assert_eq!(last.session, s.id(), "entry names the issuing session");
    assert!(last.wall_nanos > 0);
    // Entries keep the full span breakdown, server lock span included.
    assert_eq!(last.spans.first().unwrap().name, "locks");
    assert!(last.spans.iter().any(|sp| sp.name == "exec"));
    // Raising the threshold stops capture without clearing history.
    shared.set_slow_log(Duration::from_secs(3600), 4);
    s.execute("SELECT v.a FROM t v").unwrap();
    let after = shared.slow_entries();
    assert_eq!(after.len(), 4);
    assert_eq!(after.last().unwrap().sql, last.sql, "no new captures");
}

#[test]
fn observability_verbs_work_over_tcp() {
    let shared = SharedDatabase::paged(8).unwrap();
    shared.set_slow_log(Duration::ZERO, 128);
    let Ok(server) = Server::start(shared, "127.0.0.1:0") else {
        eprintln!("skipping: cannot bind a TCP socket in this environment");
        return;
    };
    let mut c = Client::connect(server.addr()).unwrap();
    c.execute("CREATE TABLE empl (eno INT, nam TEXT, sal INT)")
        .unwrap()
        .unwrap();
    // Enough rows to spill the 8-frame pool so reads fault pages in.
    for chunk_start in (0..1000).step_by(100) {
        let rows: Vec<String> = (chunk_start..chunk_start + 100)
            .map(|i| format!("({i}, 'e{i}', {})", 10_000 + i))
            .collect();
        c.execute(&format!("INSERT INTO empl VALUES {}", rows.join(", ")))
            .unwrap()
            .unwrap();
    }
    // TRACE runs the statement and returns its span breakdown.
    let trace = c
        .execute("TRACE SELECT v.sal FROM empl v WHERE v.nam = 'e500'")
        .unwrap()
        .unwrap();
    assert_eq!(
        trace.columns,
        ["span", "nanos", "page_reads", "buffer_hits", "wal_appends"]
    );
    let spans: Vec<&str> = trace.rows.iter().map(|r| r[0].as_str()).collect();
    assert!(spans.contains(&"'locks'"), "spans: {spans:?}");
    assert!(spans.contains(&"'parse'"), "spans: {spans:?}");
    assert!(spans.contains(&"'exec'"), "spans: {spans:?}");
    for row in &trace.rows {
        let _: u64 = row[1].parse().expect("nanos must be an integer");
    }
    // A bare TRACE is a usage error, reported as a server ERR.
    assert!(c.execute("TRACE").unwrap().is_err());
    assert!(c.execute("TRACE   ").unwrap().is_err());
    // STATS HISTOGRAMS renders every histogram × stat pair.
    let hists = c.execute("STATS HISTOGRAMS").unwrap().unwrap();
    assert_eq!(hists.columns, ["histogram", "stat", "value"]);
    let value = |hist: &str, stat: &str| -> u64 {
        let (h, s) = (format!("'{hist}'"), format!("'{stat}'"));
        hists
            .rows
            .iter()
            .find(|r| r[0] == h && r[1] == s)
            .unwrap_or_else(|| panic!("no {hist}/{stat} row"))[2]
            .parse()
            .unwrap()
    };
    for hist in storage::HistogramsSnapshot::NAMES {
        for stat in storage::HistogramSnapshot::STAT_NAMES {
            value(hist, stat);
        }
    }
    assert!(value("wal_fsync", "count") > 0, "inserts forced the log");
    assert!(value("commit", "count") > 0, "inserts committed");
    assert!(value("commit", "total_nanos") > 0, "commits take time");
    assert!(
        value("fault_in", "count") > 0,
        "the 8-frame pool must have faulted under 1000 rows"
    );
    // SLOW lists captured statements with their span breakdown.
    let slow = c.execute("SLOW").unwrap().unwrap();
    assert_eq!(slow.columns, ["session", "statement", "wall_us", "spans"]);
    assert!(
        slow.rows
            .iter()
            .any(|r| r[1].contains("SELECT v.sal FROM empl v")),
        "the traced SELECT must appear in SLOW: {:?}",
        slow.rows
    );
    for row in &slow.rows {
        assert!(row[3].contains("exec="), "spans column: {row:?}");
    }
    server.stop();
}

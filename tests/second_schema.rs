//! The pipeline on a schema that is *not* the paper's empdep: the classic
//! suppliers/parts/shipments database. Exercises multi-attribute keys,
//! two referential constraints out of one relation, and the
//! direction-sensitivity of dangling-row deletion.

use prolog_front_end::coupling::Coupler;
use prolog_front_end::dbcl::{AttrType, ConstraintSet, DatabaseDef};
use prolog_front_end::optimizer::{Simplifier, SimplifyOutcome};
use prolog_front_end::pfe_core::Datum;

fn sp_database() -> DatabaseDef {
    use AttrType::{Int, Text};
    let mut db = DatabaseDef::new("sp");
    db.add_relation_typed("supplier", &[("sno", Int), ("sname", Text), ("city", Text)]);
    db.add_relation_typed("part", &[("pno", Int), ("pname", Text), ("weight", Int)]);
    db.add_relation_typed("shipment", &[("sno", Int), ("pno", Int), ("qty", Int)]);
    db
}

fn sp_constraints() -> ConstraintSet {
    let mut cs = ConstraintSet::new();
    cs.add_fd("supplier", &["sno"], &["sname", "city"])
        .add_fd("part", &["pno"], &["pname", "weight"])
        .add_fd("shipment", &["sno", "pno"], &["qty"])
        .add_refint("shipment", &["sno"], "supplier", &["sno"])
        .add_refint("shipment", &["pno"], "part", &["pno"])
        .add_bound("shipment", "qty", 1, 1_000)
        .add_bound("part", "weight", 1, 500);
    cs
}

fn sp_coupler() -> Coupler {
    let mut c = Coupler::new(sp_database(), sp_constraints()).unwrap();
    for (sno, sname, city) in [
        (1, "acme", "london"),
        (2, "bolt", "paris"),
        (3, "coil", "london"),
    ] {
        c.load_tuple(
            "supplier",
            &[Datum::Int(sno), Datum::text(sname), Datum::text(city)],
        )
        .unwrap();
    }
    for (pno, pname, weight) in [(10, "nut", 5), (20, "bolt", 9), (30, "screw", 2)] {
        c.load_tuple(
            "part",
            &[Datum::Int(pno), Datum::text(pname), Datum::Int(weight)],
        )
        .unwrap();
    }
    for (sno, pno, qty) in [(1, 10, 100), (1, 20, 50), (2, 10, 300), (3, 30, 400)] {
        c.load_tuple(
            "shipment",
            &[Datum::Int(sno), Datum::Int(pno), Datum::Int(qty)],
        )
        .unwrap();
    }
    c.check_integrity().unwrap();
    c
}

#[test]
fn schema_and_constraints_validate() {
    let db = sp_database();
    let cs = sp_constraints();
    cs.validate(&db).unwrap();
    // Universal-relation columns: shared sno/pno collapse.
    let cols: Vec<String> = db.attributes.iter().map(ToString::to_string).collect();
    assert_eq!(
        cols,
        ["sno", "sname", "city", "pno", "pname", "weight", "qty"]
    );
}

#[test]
fn ddl_includes_composite_key() {
    let ddl = prolog_front_end::coupling::ddl_statements(&sp_database(), &sp_constraints());
    let all = ddl.join("\n");
    assert!(all.contains("PRIMARY KEY (sno, pno)"), "{all}");
    assert!(
        all.contains("FOREIGN KEY (sno) REFERENCES supplier (sno)"),
        "{all}"
    );
    assert!(
        all.contains("FOREIGN KEY (pno) REFERENCES part (pno)"),
        "{all}"
    );
}

#[test]
fn end_to_end_join_query() {
    let mut c = sp_coupler();
    c.consult(
        "supplies(SName, PName) :-
             shipment(S, P, _),
             supplier(S, SName, _),
             part(P, PName, _).",
    )
    .unwrap();
    let run = c.query("supplies(t_S, nut)", "supplies").unwrap();
    let mut names: Vec<String> = run.answers.iter().map(|a| a["S"].to_string()).collect();
    names.sort();
    assert_eq!(names, ["'acme'", "'bolt'"]);
}

/// Dangling-row deletion is direction-sensitive: the part row of a
/// "supplier ships something" view dangles (shipment.pno ⊆ part.pno), but
/// the shipment row must survive — suppliers may ship nothing, and no
/// stored constraint says supplier.sno ⊆ shipment.sno.
#[test]
fn refint_direction_sensitivity() {
    let db = sp_database();
    let cs = sp_constraints();
    let q = prolog_front_end::dbcl::DbclQuery::parse(
        "dbcl([sp, sno, sname, city, pno, pname, weight, qty],
              [ships, *, t_N, *, *, *, *, *],
              [[supplier, v_S, t_N, v_C, *, *, *, *],
               [shipment, v_S, *, *, v_P, *, *, v_Q],
               [part, *, *, *, v_P, v_PN, v_W, *]],
              [])",
    )
    .unwrap();
    q.validate(&db).unwrap();
    let SimplifyOutcome::Simplified(out, stats) = Simplifier::new(&db, &cs).simplify(q) else {
        panic!("satisfiable")
    };
    assert_eq!(
        stats.rows_removed_refint, 1,
        "only the part row goes:\n{out}"
    );
    let relations: Vec<&str> = out.rows.iter().map(|r| r.relation.as_str()).collect();
    assert_eq!(relations, ["supplier", "shipment"]);
}

/// The composite-key FD merges two shipment rows agreeing on (sno, pno).
#[test]
fn composite_key_chase() {
    let db = sp_database();
    let cs = sp_constraints();
    let mut q = prolog_front_end::dbcl::DbclQuery::parse(
        "dbcl([sp, sno, sname, city, pno, pname, weight, qty],
              [q, *, *, *, *, *, *, t_Q],
              [[shipment, v_S, *, *, v_P, *, *, t_Q],
               [shipment, v_S, *, *, v_P, *, *, v_Q2]],
              [])",
    )
    .unwrap();
    q.validate(&db).unwrap();
    match prolog_front_end::optimizer::chase::chase(&mut q, &db, &cs) {
        prolog_front_end::optimizer::chase::ChaseOutcome::Done(stats) => {
            assert_eq!(stats.rows_removed, 1);
            assert_eq!(q.rows.len(), 1);
        }
        other => panic!("{other:?}"),
    }
}

/// Agreement on only half of the composite key must NOT merge.
#[test]
fn partial_composite_key_does_not_chase() {
    let db = sp_database();
    let cs = sp_constraints();
    let mut q = prolog_front_end::dbcl::DbclQuery::parse(
        "dbcl([sp, sno, sname, city, pno, pname, weight, qty],
              [q, *, *, *, *, *, *, t_Q],
              [[shipment, v_S, *, *, v_P1, *, *, t_Q],
               [shipment, v_S, *, *, v_P2, *, *, v_Q2]],
              [])",
    )
    .unwrap();
    q.validate(&db).unwrap();
    match prolog_front_end::optimizer::chase::chase(&mut q, &db, &cs) {
        prolog_front_end::optimizer::chase::ChaseOutcome::Done(stats) => {
            assert_eq!(stats.rows_removed, 0);
            assert_eq!(q.rows.len(), 2);
        }
        other => panic!("{other:?}"),
    }
}

/// Value bounds of the second schema feed §6.1 as usual.
#[test]
fn qty_bounds_apply() {
    let mut c = sp_coupler();
    c.consult(
        "big_shipment(SName) :-
             shipment(S, P, Q), greater(Q, 2000),
             supplier(S, SName, C).",
    )
    .unwrap();
    let run = c.query("big_shipment(t_S)", "big").unwrap();
    // qty ≤ 1000 by the bound: provably empty, no SQL issued.
    assert!(run.answers.is_empty());
    assert!(run.branches[0].sql.is_none());
    assert!(run.branches[0].empty_reason.is_some());
}

/// Integrity is enforced on the second schema's own constraints.
#[test]
fn integrity_enforced() {
    let mut c = sp_coupler();
    // Shipment referencing an unknown part.
    c.load_tuple("shipment", &[Datum::Int(1), Datum::Int(99), Datum::Int(10)])
        .unwrap();
    assert!(c.check_integrity().is_err());
}

//! Adversarial soundness test for the §6 optimizer: random DBCL tableaux
//! (random join structure, constants, comparisons — not just view-shaped
//! queries) must keep exactly the same answers after Algorithm 2, measured
//! by executing both translations on constraint-satisfying data.
//!
//! When the optimizer proves a query empty, the direct translation must
//! indeed return no rows.

use prolog::Atom;
use prolog_front_end::coupling::ddl_statements;
use prolog_front_end::coupling::workload::{Firm, FirmParams};
use prolog_front_end::dbcl::{
    CompOp, Comparison, ConstraintSet, DatabaseDef, DbclQuery, Entry, Operand, Row, Symbol,
};
use prolog_front_end::optimizer::{Simplifier, SimplifyOutcome};
use prolog_front_end::sqlgen::mapping::{to_sql_text, MappingOptions};
use proptest::prelude::*;

/// Pool of symbols/constants the generator draws from. Constants are
/// chosen to sometimes hit the generated data (dept numbers 1–6, employee
/// names e1–e9, in-bounds salaries).
#[derive(Debug, Clone, Copy)]
enum Cell {
    Shared(usize),   // v_s<i>, shared across rows → equijoins
    Fresh,           // a fresh variable, unique per position
    DnoConst(i64),   // 1..6
    NamConst(usize), // e1..e9
    SalConst(i64),   // in-bounds salary
}

fn cell_strategy() -> impl Strategy<Value = Cell> {
    prop_oneof![
        3 => (0usize..5).prop_map(Cell::Shared),
        4 => Just(Cell::Fresh),
        1 => (1i64..7).prop_map(Cell::DnoConst),
        1 => (1usize..10).prop_map(Cell::NamConst),
        1 => (10_000i64..90_001).prop_map(Cell::SalConst),
    ]
}

#[derive(Debug, Clone)]
struct GenRow {
    is_empl: bool,
    cells: Vec<Cell>, // 4 for empl, 3 for dept
}

fn row_strategy() -> impl Strategy<Value = GenRow> {
    (
        proptest::bool::ANY,
        proptest::collection::vec(cell_strategy(), 4),
    )
        .prop_map(|(is_empl, cells)| GenRow { is_empl, cells })
}

#[derive(Debug, Clone)]
struct GenComparison {
    op_idx: usize,
    lhs_shared: usize,
    rhs_const: Option<i64>,
    rhs_shared: usize,
}

fn comparison_strategy() -> impl Strategy<Value = GenComparison> {
    (
        0usize..6,
        0usize..5,
        proptest::option::of(0i64..100_000),
        0usize..5,
    )
        .prop_map(
            |(op_idx, lhs_shared, rhs_const, rhs_shared)| GenComparison {
                op_idx,
                lhs_shared,
                rhs_const,
                rhs_shared,
            },
        )
}

/// Builds a valid DbclQuery from the generated description; returns `None`
/// when the combination is unusable (e.g. no row to anchor the target).
fn build_query(db: &DatabaseDef, rows: &[GenRow], comps: &[GenComparison]) -> Option<DbclQuery> {
    let mut query = DbclQuery::new(db, "gen");
    let mut fresh = 0usize;
    let mut mk_entry = |cell: &Cell, col: usize| -> Entry {
        match cell {
            Cell::Shared(i) => Entry::var(&format!("s{i}")),
            Cell::Fresh => {
                fresh += 1;
                Entry::var(&format!("f{fresh}"))
            }
            Cell::DnoConst(d) => {
                if col == 3 {
                    Entry::int(*d)
                } else {
                    // A dno constant elsewhere becomes fresh (type safety).
                    fresh += 1;
                    Entry::var(&format!("f{fresh}"))
                }
            }
            Cell::NamConst(n) => {
                if col == 1 || col == 4 {
                    Entry::sym_const(&format!("e{n}"))
                } else {
                    fresh += 1;
                    Entry::var(&format!("f{fresh}"))
                }
            }
            Cell::SalConst(s) => {
                if col == 2 {
                    Entry::int(*s)
                } else {
                    fresh += 1;
                    Entry::var(&format!("f{fresh}"))
                }
            }
        }
    };
    // First row is always an empl row anchoring the target at nam.
    let mut first = Row::blank(db, Atom::new("empl")).ok()?;
    first.entries[0] = Entry::var("anchor_eno");
    first.entries[1] = Entry::target("X");
    first.entries[2] = Entry::var("anchor_sal");
    first.entries[3] = Entry::var("s0"); // bias: first row joins the pool
    query.rows.push(first);
    query.target[1] = Entry::target("X");

    for gen_row in rows {
        if gen_row.is_empl {
            let mut row = Row::blank(db, Atom::new("empl")).ok()?;
            for (pos, col) in [0usize, 1, 2, 3].into_iter().enumerate() {
                row.entries[col] = mk_entry(&gen_row.cells[pos], col);
            }
            query.rows.push(row);
        } else {
            let mut row = Row::blank(db, Atom::new("dept")).ok()?;
            for (pos, col) in [3usize, 4, 5].into_iter().enumerate() {
                row.entries[col] = mk_entry(&gen_row.cells[pos], col);
            }
            query.rows.push(row);
        }
    }
    // Comparisons may only reference anchored symbols of numeric columns
    // (sal/eno/dno/mgr) — mixing text columns into orderings would be a
    // type error the real metaevaluator never produces.
    let numeric_cols = [0usize, 2, 3, 5];
    let anchored_numeric: Vec<Symbol> = query
        .symbols()
        .into_iter()
        .filter(|s| {
            query
                .first_row_occurrence(*s)
                .is_some_and(|(_, col)| numeric_cols.contains(&col))
        })
        .collect();
    if anchored_numeric.is_empty() && !comps.is_empty() {
        return Some(query); // no comparisons attachable; still a fine query
    }
    for c in comps {
        if anchored_numeric.is_empty() {
            break;
        }
        let ops = [
            CompOp::Less,
            CompOp::Greater,
            CompOp::Leq,
            CompOp::Geq,
            CompOp::Eq,
            CompOp::Neq,
        ];
        let lhs = anchored_numeric[c.lhs_shared % anchored_numeric.len()];
        let rhs = match c.rhs_const {
            Some(k) => Operand::Const(prolog_front_end::dbcl::Value::Int(k)),
            None => Operand::Sym(anchored_numeric[c.rhs_shared % anchored_numeric.len()]),
        };
        if Operand::Sym(lhs) == rhs {
            continue; // self-comparisons degenerate
        }
        query
            .comparisons
            .push(Comparison::new(ops[c.op_idx], Operand::Sym(lhs), rhs));
    }
    Some(query)
}

fn load_firm() -> rqs::Database {
    let db_def = DatabaseDef::empdep();
    let cs = ConstraintSet::empdep();
    let mut db = rqs::Database::new();
    for ddl in ddl_statements(&db_def, &cs) {
        db.execute(&ddl).unwrap();
    }
    let firm = Firm::generate(FirmParams {
        depth: 2,
        branching: 2,
        staff_per_dept: 1,
        seed: 5,
    });
    firm.load_into_rqs(&mut db).unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simplified_queries_equivalent_on_data(
        rows in proptest::collection::vec(row_strategy(), 0..4),
        comps in proptest::collection::vec(comparison_strategy(), 0..3),
    ) {
        let db_def = DatabaseDef::empdep();
        let cs = ConstraintSet::empdep();
        let Some(query) = build_query(&db_def, &rows, &comps) else {
            return Ok(());
        };
        prop_assume!(query.validate(&db_def).is_ok());
        let mut db = load_firm();
        let opts = MappingOptions { first_var_index: 1, distinct: true };

        let direct_sql = to_sql_text(&query, &db_def, opts).unwrap();
        let direct = db.execute(&direct_sql).unwrap();
        let mut direct_rows = direct.rows.clone();
        direct_rows.sort();

        match Simplifier::new(&db_def, &cs).simplify(query.clone()) {
            SimplifyOutcome::Simplified(optimized, _) => {
                prop_assert!(optimized.validate(&db_def).is_ok(),
                    "optimizer produced an invalid query:\n{optimized}\nfrom\n{query}");
                let opt_sql = to_sql_text(&optimized, &db_def, opts).unwrap();
                let optimized_result = db.execute(&opt_sql).unwrap();
                let mut opt_rows = optimized_result.rows.clone();
                opt_rows.sort();
                prop_assert_eq!(
                    &direct_rows, &opt_rows,
                    "direct:\n{}\noptimized:\n{}\nfrom query\n{}\nto query\n{}",
                    direct_sql, opt_sql, query, optimized
                );
                // And the optimizer never increases the join count.
                prop_assert!(optimized.rows.len() <= query.rows.len());
            }
            SimplifyOutcome::Empty(reason) => {
                prop_assert!(direct_rows.is_empty(),
                    "optimizer claimed empty ({reason}) but direct returned {} rows for\n{}",
                    direct_rows.len(), direct_sql);
            }
        }
    }

    /// Algorithm 2 is idempotent: simplifying twice changes nothing.
    #[test]
    fn simplification_idempotent(
        rows in proptest::collection::vec(row_strategy(), 0..4),
        comps in proptest::collection::vec(comparison_strategy(), 0..3),
    ) {
        let db_def = DatabaseDef::empdep();
        let cs = ConstraintSet::empdep();
        let Some(query) = build_query(&db_def, &rows, &comps) else {
            return Ok(());
        };
        prop_assume!(query.validate(&db_def).is_ok());
        let simplifier = Simplifier::new(&db_def, &cs);
        if let SimplifyOutcome::Simplified(once, _) = simplifier.simplify(query) {
            match simplifier.simplify(once.clone()) {
                SimplifyOutcome::Simplified(twice, stats) => {
                    prop_assert_eq!(once, twice);
                    prop_assert_eq!(stats.rows_removed(), 0);
                }
                SimplifyOutcome::Empty(reason) => {
                    prop_assert!(false, "second pass found emptiness the first missed: {reason}");
                }
            }
        }
    }
}

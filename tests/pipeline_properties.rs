//! Property-based tests over the whole pipeline.
//!
//! The central invariant of the paper's §6 optimizer is *equivalence*: a
//! simplified query returns exactly the same answers as the direct
//! translation on every database satisfying the integrity constraints.
//! The workload generator produces only such databases, so we check the
//! invariant end-to-end on random hierarchies and random queries.

use prolog_front_end::coupling::recursion::{
    eval_intermediate, eval_naive, Bound, BoundSide, ClosureSpec,
};
use prolog_front_end::coupling::workload::{Firm, FirmParams};
use prolog_front_end::dbcl::{CompOp, Comparison, DbclQuery, Operand, Symbol, Value};
use prolog_front_end::optimizer::ineq::simplify_inequalities;
use prolog_front_end::pfe_core::{views, QueryRun, Session};
use proptest::prelude::*;

fn firm_session(params: FirmParams) -> (Session, Firm) {
    let mut s = Session::empdep();
    s.consult(views::SAME_MANAGER).unwrap();
    s.consult(
        "works_for(L, H) :- works_dir_for(L, H).
         works_for(L, H) :- works_dir_for(L, M), works_for(M, H).",
    )
    .unwrap();
    let firm = Firm::generate(params);
    firm.load_into(s.coupler_mut()).unwrap();
    (s, firm)
}

fn sorted_answers(run: &QueryRun, var: &str) -> Vec<String> {
    let mut v: Vec<String> = run.answers.iter().map(|a| a[var].to_string()).collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Optimized and direct translations agree on every constraint-
    /// satisfying database, for view + comparison queries.
    #[test]
    fn optimizer_preserves_answers(
        seed in 0u64..1000,
        depth in 1usize..3,
        branching in 1usize..3,
        staff in 0usize..3,
        person in 0usize..64,
        threshold in 9_000i64..95_000,
        view_choice in 0usize..3,
    ) {
        let (mut s, firm) = firm_session(FirmParams {
            depth, branching, staff_per_dept: staff, seed,
        });
        let who = &firm.employees[person % firm.employees.len()].nam;
        let goal = match view_choice {
            0 => format!("works_dir_for(t_X, '{who}')"),
            1 => format!("same_manager(t_X, '{who}')"),
            _ => format!(
                "works_dir_for(t_X, '{who}'), empl(E, t_X, S, D), less(S, {threshold})"
            ),
        };
        s.config_mut().cache = false;
        let optimized = s.query(&goal, "q").unwrap();
        s.config_mut().optimize = false;
        let direct = s.query(&goal, "q").unwrap();
        prop_assert_eq!(sorted_answers(&optimized, "X"), sorted_answers(&direct, "X"));
        // The optimizer never does *more* DBMS work.
        prop_assert!(
            optimized.total_metrics().joins <= direct.total_metrics().joins
        );
    }

    /// Naive and stored-intermediate recursion agree in both directions.
    #[test]
    fn recursion_strategies_agree(
        seed in 0u64..500,
        depth in 1usize..3,
        branching in 1usize..3,
        person in 0usize..64,
        downward in proptest::bool::ANY,
    ) {
        let (mut s, firm) = firm_session(FirmParams {
            depth, branching, staff_per_dept: 1, seed,
        });
        let who = firm.employees[person % firm.employees.len()].nam.clone();
        let bound = Bound {
            side: if downward { BoundSide::High } else { BoundSide::Low },
            value: prolog_front_end::pfe_core::Datum::text(&who),
        };
        let coupler = s.coupler_mut();
        let spec = ClosureSpec::from_view(coupler, "works_dir_for").unwrap();
        let naive = eval_naive(coupler, "works_for", &bound, firm.max_chain() + 2).unwrap();
        let inter = eval_intermediate(coupler, &spec, &bound, "intermediate").unwrap();
        let mut a: Vec<String> = naive.answers.iter().map(ToString::to_string).collect();
        let mut b: Vec<String> = inter.answers.iter().map(ToString::to_string).collect();
        a.sort(); a.dedup();
        b.sort(); b.dedup();
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------------
// DBCL parse/print round trip on generated queries (Figure 2's grammar).
// ---------------------------------------------------------------------------

fn entry_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("*".to_owned()),
        "[a-e]".prop_map(|s| format!("t_{s}")),
        "[a-h][0-9]?".prop_map(|s| format!("v_{s}")),
        "[a-z]{2,5}".prop_map(|s| s),
        (0i64..100_000).prop_map(|i| i.to_string()),
    ]
}

fn row_strategy() -> impl Strategy<Value = String> {
    (
        prop_oneof![Just("empl"), Just("dept")],
        proptest::collection::vec(entry_strategy(), 6),
    )
        .prop_map(|(rel, entries)| {
            // Align entries to the relation's applicable columns.
            let applicable: &[usize] = if rel == "empl" {
                &[0, 1, 2, 3]
            } else {
                &[3, 4, 5]
            };
            let cells: Vec<String> = (0..6)
                .map(|i| {
                    if applicable.contains(&i) {
                        let e = &entries[i];
                        if e == "*" {
                            "v_x9".to_owned()
                        } else {
                            e.clone()
                        }
                    } else {
                        "*".to_owned()
                    }
                })
                .collect();
            format!("[{rel}, {}]", cells.join(", "))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse(print(q)) == q for generated conjunctive DBCL statements.
    #[test]
    fn dbcl_round_trip(rows in proptest::collection::vec(row_strategy(), 1..5)) {
        let src = format!(
            "dbcl([empdep, eno, nam, sal, dno, fct, mgr],
                  [view, *, t_a, *, *, *, *],
                  [{}],
                  [])",
            rows.join(", ")
        );
        let Ok(q) = DbclQuery::parse(&src) else {
            // Some generated strings are not valid queries; fine.
            return Ok(());
        };
        let reparsed = DbclQuery::parse(&q.to_string()).unwrap();
        prop_assert_eq!(q, reparsed);
    }
}

// ---------------------------------------------------------------------------
// Inequality-graph soundness against brute force.
// ---------------------------------------------------------------------------

const VAR_NAMES: [&str; 4] = ["a", "b", "c", "d"];

fn comparison_strategy() -> impl Strategy<Value = Comparison> {
    let operand = prop_oneof![
        (0usize..4).prop_map(|i| Operand::Sym(Symbol::var(VAR_NAMES[i]))),
        (0i64..5).prop_map(|v| Operand::Const(Value::Int(v))),
    ];
    (0usize..6, operand.clone(), operand).prop_map(|(op, lhs, rhs)| {
        let op = [
            CompOp::Less,
            CompOp::Greater,
            CompOp::Leq,
            CompOp::Geq,
            CompOp::Eq,
            CompOp::Neq,
        ][op];
        Comparison::new(op, lhs, rhs)
    })
}

fn eval_operand(op: &Operand, assignment: &[i64; 4]) -> i64 {
    match op {
        Operand::Const(Value::Int(i)) => *i,
        Operand::Sym(s) => {
            let idx = VAR_NAMES
                .iter()
                .position(|n| Symbol::var(n) == *s)
                .expect("known var");
            assignment[idx]
        }
        Operand::Const(Value::Sym(_)) => unreachable!("generator emits ints only"),
    }
}

fn satisfies(comps: &[Comparison], assignment: &[i64; 4]) -> bool {
    comps.iter().all(|c| {
        c.op.eval_int(
            eval_operand(&c.lhs, assignment),
            eval_operand(&c.rhs, assignment),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The §6.1 graph procedure is equivalence-preserving: for every
    /// assignment over a finite domain, the original comparison set and
    /// (simplified set + implied equalities) have the same truth value;
    /// a reported contradiction means no assignment satisfies the input.
    #[test]
    fn inequality_simplification_sound(
        comps in proptest::collection::vec(comparison_strategy(), 0..6)
    ) {
        let result = simplify_inequalities(&comps, &[], &std::collections::HashMap::new());
        // Enumerate all assignments over 0..5 for the four variables.
        let mut any_satisfying = false;
        for a in 0..5i64 {
            for b in 0..5i64 {
                for c in 0..5i64 {
                    for d in 0..5i64 {
                        let assignment = [a, b, c, d];
                        let original = satisfies(&comps, &assignment);
                        any_satisfying |= original;
                        if result.contradiction.is_some() {
                            prop_assert!(!original,
                                "contradiction claimed but {assignment:?} satisfies");
                            continue;
                        }
                        let merges_hold = result.merges.iter().all(|(from, to)| {
                            eval_operand(&Operand::Sym(*from), &assignment)
                                == eval_operand(to, &assignment)
                        });
                        let transformed = merges_hold && satisfies(&result.kept, &assignment);
                        prop_assert_eq!(original, transformed,
                            "assignment {:?}: original {} vs simplified {} (kept {:?}, merges {:?})",
                            assignment, original, transformed, result.kept, result.merges);
                    }
                }
            }
        }
        // No false contradictions on satisfiable input was checked above;
        // conversely a contradiction-free result must keep satisfiability
        // decidable by the DBMS, which the equivalence already guarantees.
        let _ = any_satisfying;
    }
}

//! Reproduction of the paper's Appendix: the actual DEC-20 Prolog
//! transcript for "who works directly for Smiley?", stage by stage.

use prolog_front_end::dbcl::{DatabaseDef, Entry};
use prolog_front_end::metaeval::{views, MetaEvaluator};
use prolog_front_end::pfe_core::Session;
use prolog_front_end::sqlgen::mapping::{translate, MappingOptions};

/// `?- metaevaluate(pr5, [works_dir_for(t_nam, smiley)], no_optim, NEW).`
/// yields the three-element dbcall list.
#[test]
fn appendix_metaevaluate_dbcall_list() {
    let mut engine = prolog::Engine::new();
    engine.consult(views::WORKS_DIR_FOR).unwrap();
    let db = DatabaseDef::empdep();
    let meta = MetaEvaluator::new(engine.kb(), &db);
    let out = meta
        .metaevaluate("works_dir_for(t_nam, smiley)", "works_dir_for")
        .unwrap();
    let dbcalls = out.branches[0].dbcall_terms();
    let texts: Vec<String> = dbcalls.iter().map(ToString::to_string).collect();
    // Paper:
    //   NEW = [dbcall(empl, v_eno, t_nam, v_sal1, v_dno),
    //          dbcall(dept, v_dno, v_fct, v_eno1),
    //          dbcall(empl, v_eno1, smiley, v_sal2, v_dno2)]
    // (our renamer numbers every variable from 1).
    assert_eq!(
        texts,
        [
            "dbcall(empl, v_eno1, t_nam, v_sal1, v_dno1)",
            "dbcall(dept, v_dno1, v_fct1, v_mgr1)",
            "dbcall(empl, v_mgr1, smiley, v_sal2, v_dno2)",
        ]
    );
}

/// The tableau-like DBCL form of the same call.
#[test]
fn appendix_dbcl_form() {
    let mut engine = prolog::Engine::new();
    engine.consult(views::WORKS_DIR_FOR).unwrap();
    let db = DatabaseDef::empdep();
    let meta = MetaEvaluator::new(engine.kb(), &db);
    let out = meta
        .metaevaluate("works_dir_for(t_nam, smiley)", "works_dir_for")
        .unwrap();
    let q = &out.branches[0].query;
    // Paper:
    //   dbcl([empdep, eno, nam, sal, dno, fct, mgr],
    //        [works_dir_for, *, t_nam, *, *, *, *],
    //        [[empl, v_eno, t_nam, v_sal1, v_dno, *, *],
    //         [dept, *, *, *, v_dno, v_fct, v_eno1],
    //         [empl, v_eno1, smiley, v_sal2, v_dno2, *, *]],
    //        []).
    assert_eq!(q.target[1], Entry::target("nam"));
    assert!(q
        .target
        .iter()
        .enumerate()
        .all(|(i, e)| i == 1 || *e == Entry::Star));
    assert_eq!(q.rows.len(), 3);
    assert_eq!(
        q.rows[1].entries[3], q.rows[0].entries[3],
        "shared dno symbol"
    );
    assert_eq!(
        q.rows[2].entries[0], q.rows[1].entries[5],
        "mgr = eno equijoin"
    );
    assert_eq!(q.rows[2].entries[1], Entry::sym_const("smiley"));
    assert!(q.comparisons.is_empty());
}

/// The generated SQL with the Appendix's variable numbering (v12…v14):
///
/// ```sql
/// SELECT v12.nam
/// FROM empl v12, dept v13, empl v14
/// WHERE (v12.dno=v13.dno) AND (v14.nam='smiley') AND (v13.enol=v14.enol)
/// ```
///
/// (The Appendix prints the third condition with the *symbol* name `enol`;
/// the paper's own body text, Example 5-1, uses proper attribute names —
/// `v13.mgr = v14.eno` — which is what we generate.)
#[test]
fn appendix_sql_with_v12_numbering() {
    let mut engine = prolog::Engine::new();
    engine.consult(views::WORKS_DIR_FOR).unwrap();
    let db = DatabaseDef::empdep();
    let meta = MetaEvaluator::new(engine.kb(), &db);
    let out = meta
        .metaevaluate("works_dir_for(t_nam, smiley)", "works_dir_for")
        .unwrap();
    let sql = translate(
        &out.branches[0].query,
        &db,
        MappingOptions {
            first_var_index: 12,
            distinct: false,
        },
    )
    .unwrap();
    let text = sql.to_sql();
    assert!(text.starts_with("SELECT v12.nam"), "{text}");
    assert!(text.contains("FROM empl v12, dept v13, empl v14"), "{text}");
    assert!(text.contains("(v12.dno = v13.dno)"), "{text}");
    assert!(text.contains("(v14.nam = 'smiley')"), "{text}");
    assert!(text.contains("(v13.mgr = v14.eno)"), "{text}");
}

/// The SYNTAXTREE term: select/from/where with dot(var, attr) leaves.
#[test]
fn appendix_syntax_tree() {
    let mut engine = prolog::Engine::new();
    engine.consult(views::WORKS_DIR_FOR).unwrap();
    let db = DatabaseDef::empdep();
    let meta = MetaEvaluator::new(engine.kb(), &db);
    let out = meta
        .metaevaluate("works_dir_for(t_nam, smiley)", "works_dir_for")
        .unwrap();
    let sql = translate(
        &out.branches[0].query,
        &db,
        MappingOptions {
            first_var_index: 12,
            distinct: false,
        },
    )
    .unwrap();
    let tree = sql.to_syntax_tree();
    let text = tree.to_string();
    assert!(text.starts_with("select([dot(v12, nam)]"), "{text}");
    assert!(
        text.contains("from([(empl, v12), (dept, v13), (empl, v14)])"),
        "{text}"
    );
    assert!(
        text.contains("equal(dot(v12, dno), dot(v13, dno))"),
        "{text}"
    );
    assert!(text.contains("equal(dot(v14, nam), smiley)"), "{text}");
    assert!(
        text.contains("equal(dot(v13, mgr), dot(v14, eno))"),
        "{text}"
    );
    // The tree is itself a parseable Prolog term (DBCL is Prolog).
    prolog::parse_term(&text).unwrap();
}

/// The full interactive flow as a Session transcript.
#[test]
fn appendix_end_to_end_transcript() {
    let mut s = Session::empdep();
    s.consult(views::WORKS_DIR_FOR).unwrap();
    s.load_empl(&[
        (1, "control", 80_000, 10),
        (2, "smiley", 60_000, 10),
        (3, "jones", 30_000, 20),
    ])
    .unwrap();
    s.load_dept(&[(10, "hq", 1), (20, "field", 2)]).unwrap();
    s.check_integrity().unwrap();
    let transcript = s
        .explain("works_dir_for(t_nam, smiley)", "works_dir_for")
        .unwrap();
    assert!(transcript.contains("metaevaluate"), "{transcript}");
    assert!(transcript.contains("dbcl("), "{transcript}");
    assert!(transcript.contains("SELECT"), "{transcript}");
    assert!(transcript.contains("1 answer(s)"), "{transcript}");
}

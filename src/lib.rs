//! Umbrella crate for the SIGMOD'84 optimizing Prolog front-end reproduction.
//!
//! Re-exports the end-to-end [`pfe_core`] facade plus every subsystem crate,
//! so examples and integration tests can reach any layer:
//!
//! - [`prolog`] — the SLD-resolution Prolog engine (expert-system substrate)
//! - [`dbcl`] — the tableau-like intermediate language of database calls
//! - [`metaeval`] — PROLOG → DBCL translation (delayed database calls)
//! - [`optimizer`] — syntactic + semantic DBCL simplification (§6)
//! - [`sqlgen`] — DBCL → SQL translation (§5)
//! - [`rqs`] — the relational query system reachable through SQL
//! - [`coupling`] — global optimization: caching, recursion, query batches (§7)

pub use coupling;
pub use dbcl;
pub use metaeval;
pub use optimizer;
pub use pfe_core;
pub use pfe_core::Session;
pub use prolog;
pub use rqs;
pub use sqlgen;
